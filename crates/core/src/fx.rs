//! FX (Fieldwise eXclusive-or) distribution — the paper's contribution.
//!
//! *Basic FX* (§3) allocates bucket `<J_1, …, J_n>` to device
//! `T_M(J_1 ⊕ … ⊕ J_n)`. *Extended FX* (§4) first passes each field value
//! through its transformation function:
//! `T_M(X_1(J_1) ⊕ … ⊕ X_n(J_n))`. When every `X_i` is the identity the
//! two coincide, so [`FxDistribution`] represents both, parameterised by an
//! [`Assignment`].
//!
//! The transformation arithmetic is pure XOR/shift/AND — the paper's
//! §5.2.2 measures this at roughly a third of GDM's multiply-based cost
//! on an MC68000 (whose multiplier took ~70 cycles). This implementation
//! additionally compiles the per-field transforms into lookup tables (the
//! images are tiny — at most `F` entries each), so the hot path is one
//! load + one XOR per field; `pmr-bench`'s `addr_compute` bench reproduces
//! the comparison on the host CPU, where pipelined multipliers make the
//! kernels much closer than in 1988 (see EXPERIMENTS.md).

use crate::assign::{Assignment, AssignmentStrategy};
use crate::bits::t_m;
use crate::error::Result;
use crate::inverse::InversePlan;
use crate::method::DistributionMethod;
use crate::query::Pattern;
use crate::system::SystemConfig;
use crate::transform::Transform;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The FX distribution method.
///
/// # Examples
///
/// Reproducing the paper's Table 1 (Basic FX, `F = (2, 8)`, `M = 4`):
///
/// ```
/// use pmr_core::{FxDistribution, SystemConfig};
/// use pmr_core::method::DistributionMethod;
///
/// let sys = SystemConfig::new(&[2, 8], 4).unwrap();
/// let fx = FxDistribution::basic(sys).unwrap();
/// // First rows of Table 1: <000,000>→0, <000,001>→1, … <001,000>→1, …
/// assert_eq!(fx.device_of(&[0, 0]), 0);
/// assert_eq!(fx.device_of(&[0, 5]), 1); // T_4(0 ⊕ 101_B) = 01_B
/// assert_eq!(fx.device_of(&[1, 0]), 1);
/// assert_eq!(fx.device_of(&[1, 7]), 2); // T_4(1 ⊕ 111_B) = 10_B
/// ```
#[derive(Debug, Clone)]
pub struct FxDistribution {
    assignment: Assignment,
    /// Precomputed address kernel (see [`Kernel`]).
    kernel: Kernel,
    /// Per-pattern inverse-mapping plans, built lazily and shared across
    /// clones (see [`FxDistribution::inverse_plan`]).
    plans: PlanCache,
}

/// Lazily-built per-[`Pattern`] inverse plans. Shared across clones of the
/// distribution (an `Arc`), so a plan is built once per (distribution,
/// pattern) no matter how many queries or executor runs reuse it. Lock
/// poisoning is ignored — plans are insert-only and a panicking builder
/// leaves the map in a consistent state.
#[derive(Clone, Default)]
struct PlanCache(Arc<std::sync::RwLock<HashMap<Pattern, Arc<InversePlan>>>>);

impl PlanCache {
    fn get(&self, pattern: Pattern) -> Option<Arc<InversePlan>> {
        self.0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&pattern)
            .cloned()
    }

    fn insert(&self, pattern: Pattern, plan: Arc<InversePlan>) -> Arc<InversePlan> {
        // First writer wins so concurrent builders share one plan.
        let mut map = self.0.write().unwrap_or_else(|e| e.into_inner());
        map.entry(pattern).or_insert(plan).clone()
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self.0.read().unwrap_or_else(|e| e.into_inner()).len();
        write!(f, "PlanCache({len} patterns)")
    }
}

/// Field sizes above this threshold make a materialised per-field table
/// unreasonable (64 KiB of `u64` per field at most).
const MAX_TABLE_SIZE: u64 = 1 << 16;

/// Width of the batched address-computation lanes: 8 independent XOR
/// accumulator chains per inner step, enough instruction-level
/// parallelism to hide the table-load latency without spilling the
/// accumulator array out of registers (see DESIGN "Batched address
/// computation").
const BATCH_LANES: usize = 8;

/// Cap on a flat-LUT segment's entry count (the product of its member
/// fields' sizes). 2¹¹ `u64` entries keep every segment slab (≤ 16 KiB)
/// resident in L1 while still folding several fields into one load: the
/// paper's Table 7 system (six fields of 8) collapses into two 512-entry
/// segments, so a batched lookup costs two loads per code instead of
/// six. Fields too large to merge get a segment of their own.
const SEGMENT_CAP: u64 = 1 << 11;

/// Precomputed address kernel.
///
/// Transform images of small fields are tiny (`F < M` entries), so a real
/// deployment materialises them once and the hot path becomes one load +
/// one XOR per field with no per-kind branching. Identity fields of
/// moderate size get an identity table to keep the loop uniform; systems
/// with huge fields fall back to shift computation.
#[derive(Debug, Clone)]
enum Kernel {
    /// One lookup table per field (covers every experimental system),
    /// alongside the packed layout's shift/mask pairs so the packed hot
    /// path is extract → load → XOR per field.
    Tables {
        /// Transform image per field (`tables[i][J] = X_i(J)`).
        tables: Vec<Box<[u64]>>,
        /// Bit offset of each field within a packed code.
        shifts: Box<[u32]>,
        /// In-field mask `F_i − 1` of each field.
        masks: Box<[u64]>,
        /// The flat segment LUT the batched lanes index: one contiguous
        /// allocation holding, per *segment* (a run of consecutive fields
        /// whose combined bucket-bit span stays under [`SEGMENT_CAP`]
        /// entries), the XOR of the member fields' images over every
        /// combination of their bucket bits. A segment lookup is
        /// `flat[seg_bases[s] + ((code >> seg_shifts[s]) & seg_masks[s])]`
        /// — one load per segment replaces one load per field (on the
        /// paper's Table 7 system, six per-field loads collapse to two),
        /// with no per-field `Box` indirection.
        flat: Box<[u64]>,
        /// Start of each segment's entries within `flat`.
        seg_bases: Box<[u32]>,
        /// Bit offset of each segment's first field within a packed code.
        seg_shifts: Box<[u32]>,
        /// Combined in-segment mask (`∏ F_i − 1` over member fields).
        seg_masks: Box<[u64]>,
    },
    /// Shift-computed transforms for systems with fields over
    /// [`MAX_TABLE_SIZE`].
    Computed(Vec<Transform>),
}

impl Kernel {
    fn for_assignment(assignment: &Assignment) -> Kernel {
        let sys = assignment.system();
        let _span = pmr_rt::span!("fx.kernel.build", fields = sys.num_fields() as u64);
        if (0..sys.num_fields()).all(|i| sys.field_size(i) <= MAX_TABLE_SIZE) {
            pmr_rt::obs::counter_add("fx.kernel.tables_built", sys.num_fields() as u64);
            let layout = sys.packed_layout();
            let tables: Vec<Box<[u64]>> = assignment
                .transforms()
                .iter()
                .map(|t| t.image().into_boxed_slice())
                .collect();
            // Fold runs of consecutive fields into combined segments: a
            // segment over fields i..j stores, for every combination `v`
            // of their packed bits, the XOR of the member images. Valid
            // because the packed layout is contiguous LSB-first and every
            // field size is a power of two, so fields i..j occupy exactly
            // the bit range the segment mask extracts.
            let n = sys.num_fields();
            let mut flat = Vec::new();
            let mut seg_bases = Vec::new();
            let mut seg_shifts = Vec::new();
            let mut seg_masks = Vec::new();
            let mut i = 0;
            while i < n {
                let seg_shift = layout.shift(i);
                let mut entries = sys.field_size(i);
                let mut j = i + 1;
                while j < n && entries * sys.field_size(j) <= SEGMENT_CAP {
                    debug_assert_eq!(
                        u64::from(layout.shift(j)),
                        u64::from(seg_shift) + u64::from(entries.trailing_zeros()),
                        "segment folding needs contiguous packed fields"
                    );
                    entries *= sys.field_size(j);
                    j += 1;
                }
                seg_bases.push(flat.len() as u32);
                seg_shifts.push(seg_shift);
                seg_masks.push(entries - 1);
                for v in 0..entries {
                    let mut acc = 0u64;
                    for k in i..j {
                        let rel = layout.shift(k) - seg_shift;
                        acc ^= tables[k][((v >> rel) & layout.mask(k)) as usize];
                    }
                    flat.push(acc);
                }
                i = j;
            }
            Kernel::Tables {
                tables,
                shifts: (0..n).map(|i| layout.shift(i)).collect(),
                masks: (0..n).map(|i| layout.mask(i)).collect(),
                flat: flat.into_boxed_slice(),
                seg_bases: seg_bases.into_boxed_slice(),
                seg_shifts: seg_shifts.into_boxed_slice(),
                seg_masks: seg_masks.into_boxed_slice(),
            }
        } else {
            Kernel::Computed(assignment.transforms().to_vec())
        }
    }

    #[inline]
    fn xor_all(&self, bucket: &[u64]) -> u64 {
        match self {
            Kernel::Tables { tables, .. } => {
                let mut acc = 0u64;
                for (table, &v) in tables.iter().zip(bucket) {
                    acc ^= table[v as usize];
                }
                acc
            }
            Kernel::Computed(transforms) => {
                let mut acc = 0u64;
                for (t, &v) in transforms.iter().zip(bucket) {
                    acc ^= t.apply(v);
                }
                acc
            }
        }
    }

    /// XOR of all transformed fields of a packed code — the packed
    /// counterpart of [`Kernel::xor_all`], needing no tuple at all.
    #[inline]
    fn xor_packed(&self, code: u64, sys: &SystemConfig) -> u64 {
        match self {
            Kernel::Tables {
                tables,
                shifts,
                masks,
                ..
            } => {
                let mut acc = 0u64;
                for ((table, &shift), &mask) in tables.iter().zip(shifts.iter()).zip(masks.iter()) {
                    acc ^= table[((code >> shift) & mask) as usize];
                }
                acc
            }
            Kernel::Computed(transforms) => {
                let layout = sys.packed_layout();
                let mut acc = 0u64;
                for (i, t) in transforms.iter().enumerate() {
                    acc ^= t.apply(layout.field(code, i));
                }
                acc
            }
        }
    }

    /// Applies field `i`'s transform to one value: a table index when the
    /// kernel is materialised, the closed form otherwise.
    #[inline]
    fn apply_field(&self, field: usize, value: u64) -> u64 {
        match self {
            Kernel::Tables { tables, .. } => tables[field][value as usize],
            Kernel::Computed(transforms) => transforms[field].apply(value),
        }
    }

    /// Batched device computation: `out[i] = T_M(xor_packed(codes[i]))`.
    ///
    /// The materialised kernel runs [`BATCH_LANES`] codes per step against
    /// the flat segment LUT — per segment, each lane does extract → one
    /// load off a shared base → XOR, with no branches and no per-field
    /// pointer chase, so the lanes' accumulator chains are independent and
    /// pipeline. Segment folding (see [`SEGMENT_CAP`]) makes the step
    /// count the *segment* count, not the field count. The computed kernel
    /// (huge fields) falls back to the scalar loop.
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64], sys: &SystemConfig) {
        let m1 = sys.devices() - 1;
        if let Kernel::Tables {
            flat,
            seg_bases,
            seg_shifts,
            seg_masks,
            ..
        } = self
        {
            let flat = &flat[..];
            let mut code_chunks = codes.chunks_exact(BATCH_LANES);
            let mut out_chunks = out.chunks_exact_mut(BATCH_LANES);
            for (chunk, slot) in (&mut code_chunks).zip(&mut out_chunks) {
                let mut acc = [0u64; BATCH_LANES];
                for ((&base, &shift), &mask) in seg_bases
                    .iter()
                    .zip(seg_shifts.iter())
                    .zip(seg_masks.iter())
                {
                    for lane in 0..BATCH_LANES {
                        let idx = base as u64 + ((chunk[lane] >> shift) & mask);
                        acc[lane] ^= flat[idx as usize];
                    }
                }
                for lane in 0..BATCH_LANES {
                    slot[lane] = acc[lane] & m1;
                }
            }
            for (&code, slot) in code_chunks
                .remainder()
                .iter()
                .zip(out_chunks.into_remainder())
            {
                *slot = self.xor_packed(code, sys) & m1;
            }
        } else {
            for (&code, slot) in codes.iter().zip(out.iter_mut()) {
                *slot = self.xor_packed(code, sys) & m1;
            }
        }
    }
}

impl FxDistribution {
    /// Basic FX: identity transforms everywhere.
    pub fn basic(sys: SystemConfig) -> Result<Self> {
        FxDistribution::with_strategy(sys, AssignmentStrategy::Basic)
    }

    /// Extended FX with transforms planned by `strategy`.
    pub fn with_strategy(sys: SystemConfig, strategy: AssignmentStrategy) -> Result<Self> {
        let assignment = Assignment::from_strategy(&sys, strategy)?;
        Ok(FxDistribution::with_assignment(assignment))
    }

    /// Extended FX with the recommended default strategy
    /// ([`AssignmentStrategy::TheoremNine`]) — perfect optimal whenever at
    /// most three fields are smaller than `M`.
    pub fn auto(sys: SystemConfig) -> Result<Self> {
        FxDistribution::with_strategy(sys, AssignmentStrategy::TheoremNine)
    }

    /// Extended FX from an explicit assignment.
    pub fn with_assignment(assignment: Assignment) -> Self {
        let kernel = Kernel::for_assignment(&assignment);
        FxDistribution {
            assignment,
            kernel,
            plans: PlanCache::default(),
        }
    }

    /// The per-field transformation assignment.
    #[inline]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The per-field transforms in field order.
    #[inline]
    pub fn transforms(&self) -> &[Transform] {
        self.assignment.transforms()
    }

    /// The XOR of the transformed *specified* values of a query — `h` in
    /// the paper's proofs. Unspecified fields contribute nothing.
    ///
    /// The qualified buckets of the query land on devices
    /// `T_M(h ⊕ ⨁ X_i(J_i))` with `i` ranging over the unspecified fields —
    /// the identity that powers both the optimality proofs and the fast
    /// inverse mapping.
    pub fn specified_xor(&self, values: &[Option<u64>]) -> u64 {
        debug_assert_eq!(values.len(), self.assignment.system().num_fields());
        values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| self.kernel.apply_field(i, val)))
            .fold(0, |acc, t| acc ^ t)
    }

    /// Applies field `i`'s transformation `X_i` to one value through the
    /// precomputed kernel: a single table load for every experimental
    /// system (fields ≤ 2¹⁶), the closed form otherwise. Equals
    /// `self.assignment().transform(i).apply(value)` by construction —
    /// property-tested against the closed forms.
    #[inline]
    pub fn apply_field(&self, field: usize, value: u64) -> u64 {
        self.kernel.apply_field(field, value)
    }

    /// The inverse-mapping plan for a query pattern, built on first use
    /// and cached (shared across clones of this distribution).
    ///
    /// The plan — pivot choice and pivot residue classes — depends only on
    /// the *pattern*, not on the specified values (those enter through
    /// [`FxDistribution::specified_xor`], which merely rotates the residue
    /// lookup by Lemma 1.1). Caching it makes repeated queries of the same
    /// shape pay the `O(F_pivot)` class construction once.
    pub fn inverse_plan(&self, pattern: Pattern) -> Arc<InversePlan> {
        if let Some(plan) = self.plans.get(pattern) {
            pmr_rt::obs::counter_add("inverse.plan_cache.hit", 1);
            return plan;
        }
        pmr_rt::obs::counter_add("inverse.plan_cache.miss", 1);
        let _span = pmr_rt::span!("inverse.plan.build", pattern = pattern.0 as u64);
        let plan = Arc::new(InversePlan::build(self, pattern));
        self.plans.insert(pattern, plan)
    }
}

impl DistributionMethod for FxDistribution {
    #[inline]
    fn device_of(&self, bucket: &[u64]) -> u64 {
        let sys = self.assignment.system();
        debug_assert_eq!(bucket.len(), sys.num_fields());
        t_m(self.kernel.xor_all(bucket), sys.devices())
    }

    #[inline]
    fn device_of_packed(&self, code: u64) -> u64 {
        let sys = self.assignment.system();
        t_m(self.kernel.xor_packed(code, sys), sys.devices())
    }

    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        assert_eq!(codes.len(), out.len(), "device_of_batch buffers must match");
        pmr_rt::obs::counter_add("addr.batch_calls", 1);
        self.kernel
            .device_of_batch(codes, out, self.assignment.system());
    }

    fn as_fx(&self) -> Option<&FxDistribution> {
        Some(self)
    }

    fn system(&self) -> &SystemConfig {
        self.assignment.system()
    }

    fn name(&self) -> String {
        if self.assignment.is_basic() {
            "FX(basic)".to_owned()
        } else {
            format!("FX({})", self.assignment.describe())
        }
    }

    /// Lemma 1.1: XOR-ing the device address by a constant permutes `Z_M`,
    /// so specified values only permute the response histogram.
    fn histogram_shift_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use crate::transform::TransformKind;

    /// Table 1, complete: Basic FX on F = (2, 8), M = 4.
    #[test]
    fn table_1_full() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys).unwrap();
        #[rustfmt::skip]
        let expected: [[u64; 8]; 2] = [
            // f2 = 0  1  2  3  4  5  6  7      (f1 = 0)
            [0, 1, 2, 3, 0, 1, 2, 3],
            // (f1 = 1)
            [1, 0, 3, 2, 1, 0, 3, 2],
        ];
        for (j1, row) in expected.iter().enumerate() {
            for (j2, &dev) in row.iter().enumerate() {
                assert_eq!(
                    fx.device_of(&[j1 as u64, j2 as u64]),
                    dev,
                    "bucket <{j1},{j2}>"
                );
            }
        }
    }

    /// Table 2 (FX columns): I + U on F = (4, 4), M = 16 is a bijection
    /// onto Z_16 in row-major order.
    #[test]
    fn table_2_i_u() {
        let sys = SystemConfig::new(&[4, 4], 16).unwrap();
        let a = Assignment::from_kinds(&sys, &[TransformKind::Identity, TransformKind::U]).unwrap();
        let fx = FxDistribution::with_assignment(a);
        let mut devices = Vec::new();
        for j1 in 0..4 {
            for j2 in 0..4 {
                devices.push(fx.device_of(&[j1, j2]));
            }
        }
        // Table 2's FX column, read top to bottom.
        assert_eq!(
            devices,
            vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
        );
    }

    /// Table 3: I + IU1 on F = (4, 4), M = 16.
    #[test]
    fn table_3_i_iu1() {
        let sys = SystemConfig::new(&[4, 4], 16).unwrap();
        let a =
            Assignment::from_kinds(&sys, &[TransformKind::Identity, TransformKind::Iu1]).unwrap();
        let fx = FxDistribution::with_assignment(a);
        let mut devices = Vec::new();
        for j1 in 0..4 {
            for j2 in 0..4 {
                devices.push(fx.device_of(&[j1, j2]));
            }
        }
        assert_eq!(
            devices,
            vec![0, 5, 10, 15, 1, 4, 11, 14, 2, 7, 8, 13, 3, 6, 9, 12]
        );
    }

    /// Table 4: I, U, IU1 on F = (2, 4, 2), M = 8.
    #[test]
    fn table_4_i_u_iu1() {
        let sys = SystemConfig::new(&[2, 4, 2], 8).unwrap();
        let a = Assignment::from_kinds(
            &sys,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu1,
            ],
        )
        .unwrap();
        let fx = FxDistribution::with_assignment(a);
        let mut devices = Vec::new();
        for j1 in 0..2 {
            for j2 in 0..4 {
                for j3 in 0..2 {
                    devices.push(fx.device_of(&[j1, j2, j3]));
                }
            }
        }
        assert_eq!(
            devices,
            vec![0, 5, 2, 7, 4, 1, 6, 3, 1, 4, 3, 6, 5, 0, 7, 2]
        );
    }

    /// Table 5: I + IU2 on F = (8, 2), M = 16.
    #[test]
    fn table_5_i_iu2() {
        let sys = SystemConfig::new(&[8, 2], 16).unwrap();
        let a =
            Assignment::from_kinds(&sys, &[TransformKind::Identity, TransformKind::Iu2]).unwrap();
        let fx = FxDistribution::with_assignment(a);
        let mut devices = Vec::new();
        for j1 in 0..8 {
            for j2 in 0..2 {
                devices.push(fx.device_of(&[j1, j2]));
            }
        }
        assert_eq!(
            devices,
            vec![0, 13, 1, 12, 2, 15, 3, 14, 4, 9, 5, 8, 6, 11, 7, 10]
        );
    }

    /// Table 6: I, U, IU2 on F = (4, 2, 2), M = 16.
    #[test]
    fn table_6_i_u_iu2() {
        let sys = SystemConfig::new(&[4, 2, 2], 16).unwrap();
        let a = Assignment::from_kinds(
            &sys,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu2,
            ],
        )
        .unwrap();
        let fx = FxDistribution::with_assignment(a);
        let mut devices = Vec::new();
        for j1 in 0..4 {
            for j2 in 0..2 {
                for j3 in 0..2 {
                    devices.push(fx.device_of(&[j1, j2, j3]));
                }
            }
        }
        assert_eq!(
            devices,
            vec![0, 13, 8, 5, 1, 12, 9, 4, 2, 15, 10, 7, 3, 14, 11, 6]
        );
    }

    /// The field-transformation motivation example from §3: with
    /// F = (2, 8), M = 16, mapping f1 through X with X(f1) = {0, 8}
    /// (a U transform) makes the distribution perfect optimal.
    #[test]
    fn section_3_u_motivation() {
        let _sys = SystemConfig::new(&[2, 8], 16).unwrap();
        let u = Transform::new(TransformKind::U, 2, 16).unwrap();
        assert_eq!(u.image(), vec![0, 8]);
    }

    #[test]
    fn specified_xor_matches_manual() {
        let sys = SystemConfig::new(&[4, 4, 8], 16).unwrap();
        let a = Assignment::from_kinds(
            &sys,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu1,
            ],
        )
        .unwrap();
        let fx = FxDistribution::with_assignment(a);
        let h = fx.specified_xor(&[Some(2), None, Some(3)]);
        let t0 = fx.transforms()[0].apply(2);
        let t2 = fx.transforms()[2].apply(3);
        assert_eq!(h, t0 ^ t2);
        // Fully unspecified: h = 0.
        assert_eq!(fx.specified_xor(&[None, None, None]), 0);
    }

    #[test]
    fn names() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        assert_eq!(
            FxDistribution::basic(sys.clone()).unwrap().name(),
            "FX(basic)"
        );
        let sys16 = SystemConfig::new(&[4, 4], 16).unwrap();
        let fx = FxDistribution::with_strategy(sys16, AssignmentStrategy::CycleIu1).unwrap();
        assert_eq!(fx.name(), "FX(I,U)");
    }

    #[test]
    fn device_is_always_in_range() {
        let sys = SystemConfig::new(&[4, 8, 2], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let mut buf = Vec::new();
        for idx in sys.all_indices() {
            sys.decode_index(idx, &mut buf);
            assert!(fx.device_of(&buf) < sys.devices());
        }
    }

    #[test]
    fn shift_invariance_declared() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys).unwrap();
        assert!(fx.histogram_shift_invariant());
    }

    /// The packed override agrees with the tuple path on every bucket,
    /// under both kernels (tables and computed).
    #[test]
    fn device_of_packed_matches_tuple_path() {
        let sys = SystemConfig::new(&[4, 8, 2], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let mut buf = Vec::new();
        for code in sys.all_indices() {
            sys.decode_index(code, &mut buf);
            assert_eq!(fx.device_of_packed(code), fx.device_of(&buf), "code {code}");
        }
        // Force the computed kernel with a field over the table threshold.
        let big = SystemConfig::new(&[1 << 17, 4], 8).unwrap();
        let fx_big = FxDistribution::auto(big.clone()).unwrap();
        let layout = big.packed_layout();
        for bucket in [[0u64, 0], [5, 3], [(1 << 17) - 1, 1], [1 << 16, 2]] {
            assert_eq!(
                fx_big.device_of_packed(layout.pack(&bucket)),
                fx_big.device_of(&bucket)
            );
        }
    }

    /// The batched lanes (flat LUT) agree with the scalar packed path on
    /// every bucket, at every batch length (exercising full lanes and the
    /// scalar tail), under both kernels.
    #[test]
    fn device_of_batch_matches_scalar() {
        let sys = SystemConfig::new(&[4, 8, 2], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let codes: Vec<u64> = sys.all_indices().collect();
        for len in [0, 1, 7, 8, 9, 16, codes.len()] {
            let mut out = vec![u64::MAX; len];
            fx.device_of_batch(&codes[..len], &mut out);
            for (&code, &dev) in codes[..len].iter().zip(&out) {
                assert_eq!(dev, fx.device_of_packed(code), "len {len} code {code}");
            }
        }
        // Computed kernel (field over the table threshold): scalar fallback.
        let big = SystemConfig::new(&[1 << 17, 4], 8).unwrap();
        let fx_big = FxDistribution::auto(big.clone()).unwrap();
        let layout = big.packed_layout();
        let big_codes: Vec<u64> = [[0u64, 0], [5, 3], [(1 << 17) - 1, 1], [1 << 16, 2]]
            .iter()
            .map(|b| layout.pack(b))
            .collect();
        let mut out = vec![u64::MAX; big_codes.len()];
        fx_big.device_of_batch(&big_codes, &mut out);
        for (&code, &dev) in big_codes.iter().zip(&out) {
            assert_eq!(dev, fx_big.device_of_packed(code));
        }
    }

    /// `apply_field` (kernel table) equals the closed-form transform.
    #[test]
    fn apply_field_matches_closed_form() {
        let sys = SystemConfig::new(&[2, 4, 8], 32).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        for i in 0..sys.num_fields() {
            let t = fx.assignment().transform(i);
            for v in 0..sys.field_size(i) {
                assert_eq!(fx.apply_field(i, v), t.apply(v), "field {i} value {v}");
            }
        }
    }

    /// Plans are cached per pattern and shared across clones.
    #[test]
    fn inverse_plans_are_cached_and_shared() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys).unwrap();
        let p = crate::query::Pattern::from_unspecified(&[1]);
        let a = fx.inverse_plan(p);
        let b = fx.inverse_plan(p);
        assert!(Arc::ptr_eq(&a, &b), "same pattern must reuse the plan");
        let clone = fx.clone();
        let c = clone.inverse_plan(p);
        assert!(Arc::ptr_eq(&a, &c), "clones share the plan cache");
        assert_ne!(format!("{:?}", fx), "", "debug impl renders");
    }
}
