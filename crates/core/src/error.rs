//! Error type shared across the workspace's core layer.

use std::fmt;

/// Result alias for fallible `pmr-core` operations.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors raised while validating configurations, transformations, and
/// queries.
///
/// Every constructor in the crate validates its inputs eagerly so that a
/// mis-specified system fails at build time rather than silently
/// misdistributing buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A quantity that must be a power of two (field size, device count)
    /// was not.
    NotPowerOfTwo {
        /// The offending value.
        value: u64,
    },
    /// A system was declared with zero fields.
    NoFields,
    /// A field index was out of range for the system.
    FieldOutOfRange {
        /// The requested field index.
        field: usize,
        /// The number of fields in the system.
        num_fields: usize,
    },
    /// A field value was outside `{0, …, F_i − 1}`.
    ValueOutOfRange {
        /// The field the value was supplied for.
        field: usize,
        /// The supplied value.
        value: u64,
        /// The field size `F_i`.
        field_size: u64,
    },
    /// A bucket tuple had the wrong number of coordinates.
    ArityMismatch {
        /// Expected number of fields.
        expected: usize,
        /// Supplied number of coordinates.
        got: usize,
    },
    /// A U/IU1/IU2 transformation was requested for a field whose size is
    /// not strictly less than the device count (the paper only defines the
    /// non-identity transforms on proper subsets of `Z_M`).
    TransformRequiresSmallField {
        /// The field size `F`.
        field_size: u64,
        /// The device count `M`.
        devices: u64,
    },
    /// The bucket space (or a query's qualified-bucket count) overflowed
    /// `u64` / `usize` arithmetic.
    Overflow,
    /// A per-field transform list did not cover every field exactly once.
    TransformArityMismatch {
        /// Expected number of fields.
        expected: usize,
        /// Supplied number of transforms.
        got: usize,
    },
    /// A transform was constructed against a different `M` than the system
    /// it is being used with.
    DeviceCountMismatch {
        /// `M` the transform was built for.
        transform_m: u64,
        /// `M` of the system.
        system_m: u64,
    },
    /// A transform was constructed against a different field size than the
    /// field it is being used with.
    FieldSizeMismatch {
        /// Field index.
        field: usize,
        /// Size the transform was built for.
        transform_size: u64,
        /// Actual field size.
        field_size: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotPowerOfTwo { value } => {
                write!(f, "{value} is not a power of two")
            }
            Error::NoFields => write!(f, "a system must have at least one field"),
            Error::FieldOutOfRange { field, num_fields } => {
                write!(
                    f,
                    "field index {field} out of range (system has {num_fields} fields)"
                )
            }
            Error::ValueOutOfRange {
                field,
                value,
                field_size,
            } => {
                write!(
                    f,
                    "value {value} out of range for field {field} (size {field_size})"
                )
            }
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "bucket has {got} coordinates, system has {expected} fields"
                )
            }
            Error::TransformRequiresSmallField {
                field_size,
                devices,
            } => {
                write!(
                    f,
                    "U/IU1/IU2 transforms require field size < device count \
                     (got F = {field_size}, M = {devices})"
                )
            }
            Error::Overflow => write!(f, "bucket-space arithmetic overflowed"),
            Error::TransformArityMismatch { expected, got } => {
                write!(f, "{got} transforms supplied for a {expected}-field system")
            }
            Error::DeviceCountMismatch {
                transform_m,
                system_m,
            } => {
                write!(
                    f,
                    "transform built for M = {transform_m}, system has M = {system_m}"
                )
            }
            Error::FieldSizeMismatch {
                field,
                transform_size,
                field_size,
            } => {
                write!(
                    f,
                    "transform for field {field} built for size {transform_size}, \
                     field has size {field_size}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::NotPowerOfTwo { value: 12 };
        assert_eq!(e.to_string(), "12 is not a power of two");
        let e = Error::ValueOutOfRange {
            field: 2,
            value: 9,
            field_size: 8,
        };
        assert!(e.to_string().contains("field 2"));
        assert!(e.to_string().contains("size 8"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
