//! Machine-checkable statements of the paper's theorems.
//!
//! Each theorem is packaged as a *claim* — a predicate picking out the
//! (system, assignment, pattern) triples the theorem speaks about — plus
//! the exhaustive check of its conclusion. [`verify_all`] sweeps a grid
//! of systems and returns a per-theorem verification report; the
//! `verify_theorems` binary in `pmr-bench` prints it, and the test suite
//! asserts zero counterexamples.
//!
//! This is deliberately *not* a proof — it is the strongest falsification
//! harness a finite machine can run: every claim instance inside the
//! swept grid is checked against ground truth.

use crate::assign::Assignment;
use crate::fx::FxDistribution;
use crate::optimality::pattern_strict_optimal;
use crate::query::Pattern;
use crate::system::SystemConfig;
use crate::transform::TransformKind;

/// Identifier of a verifiable claim from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Claim {
    /// Theorem 1: any FX distribution is 0-optimal and 1-optimal.
    Theorem1,
    /// Theorem 2: strict optimal when some unspecified field has `F ≥ M`.
    Theorem2,
    /// Theorem 4: two small fields, `I` + `U` → perfect optimal.
    Theorem4,
    /// Theorem 5: two small fields, `I` + `IU1` → perfect optimal.
    Theorem5,
    /// Theorem 6: two small fields, `U` + `IU1` → perfect optimal.
    Theorem6,
    /// Theorem 7: two small fields, `I` + `IU2` → perfect optimal.
    Theorem7,
    /// Theorem 8: two small fields, `U` + `IU2` → perfect optimal.
    Theorem8,
    /// Theorem 9: at most three small fields → the constructive
    /// `I`/`IU2`/`U` assignment is perfect optimal.
    Theorem9,
    /// Corollary 6.1 clause (2)/(3) and Corollary 9.1 — i.e. the full
    /// §4.2 sufficient-condition summary.
    SummaryConditions,
}

impl Claim {
    /// All claims in paper order.
    pub const ALL: [Claim; 9] = [
        Claim::Theorem1,
        Claim::Theorem2,
        Claim::Theorem4,
        Claim::Theorem5,
        Claim::Theorem6,
        Claim::Theorem7,
        Claim::Theorem8,
        Claim::Theorem9,
        Claim::SummaryConditions,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Claim::Theorem1 => "Theorem 1 (0/1-optimality)",
            Claim::Theorem2 => "Theorem 2 (large unspecified field)",
            Claim::Theorem4 => "Theorem 4 (I + U)",
            Claim::Theorem5 => "Theorem 5 (I + IU1)",
            Claim::Theorem6 => "Theorem 6 (U + IU1)",
            Claim::Theorem7 => "Theorem 7 (I + IU2)",
            Claim::Theorem8 => "Theorem 8 (U + IU2)",
            Claim::Theorem9 => "Theorem 9 (<= 3 small fields)",
            Claim::SummaryConditions => "Section 4.2 summary conditions",
        }
    }
}

/// Verification outcome for one claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimReport {
    /// Which claim.
    pub claim: Claim,
    /// Number of (system, assignment, pattern) instances the claim made.
    pub instances: u64,
    /// Counterexamples found (must be zero; listed for diagnosis).
    pub counterexamples: Vec<String>,
}

impl ClaimReport {
    /// `true` when no counterexample was found.
    pub fn verified(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// The default verification grid: every system with up to `max_fields`
/// fields, field sizes in `{1, 2, 4, 8}`, and `M ∈ {2, 4, 8, 16}`,
/// bounded by total bucket count for tractability.
pub fn default_grid(max_fields: usize, max_buckets: u64) -> Vec<SystemConfig> {
    let sizes = [1u64, 2, 4, 8];
    let ms = [2u64, 4, 8, 16];
    let mut out = Vec::new();
    for n in 1..=max_fields {
        let mut combo = vec![0usize; n];
        loop {
            let field_sizes: Vec<u64> = combo.iter().map(|&i| sizes[i]).collect();
            if field_sizes.iter().product::<u64>() <= max_buckets {
                for &m in &ms {
                    out.push(SystemConfig::new(&field_sizes, m).expect("grid sizes are valid"));
                }
            }
            // Odometer over size choices.
            let mut advanced = false;
            for slot in combo.iter_mut().rev() {
                *slot += 1;
                if *slot < sizes.len() {
                    advanced = true;
                    break;
                }
                *slot = 0;
            }
            if !advanced {
                break;
            }
        }
    }
    out
}

/// Verifies one claim over a grid of systems.
pub fn verify(claim: Claim, grid: &[SystemConfig]) -> ClaimReport {
    let mut instances = 0u64;
    let mut counterexamples = Vec::new();
    let fail = |msg: String, counterexamples: &mut Vec<String>| {
        if counterexamples.len() < 8 {
            counterexamples.push(msg);
        }
    };

    for sys in grid {
        match claim {
            Claim::Theorem1 | Claim::Theorem2 | Claim::SummaryConditions => {
                for assignment in sample_assignments(sys) {
                    let fx = FxDistribution::with_assignment(assignment.clone());
                    for pattern in Pattern::all(sys.num_fields()) {
                        let applies = match claim {
                            Claim::Theorem1 => pattern.unspecified_count() <= 1,
                            Claim::Theorem2 => crate::conditions::theorem_2_applies(sys, pattern),
                            Claim::SummaryConditions => {
                                crate::conditions::fx_pattern_guaranteed(&assignment, pattern)
                            }
                            _ => unreachable!(),
                        };
                        if !applies {
                            continue;
                        }
                        instances += 1;
                        if !pattern_strict_optimal(&fx, sys, pattern) {
                            fail(
                                format!("{sys} [{}] pattern {pattern:?}", assignment.describe()),
                                &mut counterexamples,
                            );
                        }
                    }
                }
            }
            Claim::Theorem4
            | Claim::Theorem5
            | Claim::Theorem6
            | Claim::Theorem7
            | Claim::Theorem8 => {
                // Claims about systems with exactly two small fields.
                let small = sys.small_fields();
                if small.len() != 2 {
                    continue;
                }
                let (ka, kb) = match claim {
                    Claim::Theorem4 => (TransformKind::Identity, TransformKind::U),
                    Claim::Theorem5 => (TransformKind::Identity, TransformKind::Iu1),
                    Claim::Theorem6 => (TransformKind::U, TransformKind::Iu1),
                    Claim::Theorem7 => (TransformKind::Identity, TransformKind::Iu2),
                    Claim::Theorem8 => (TransformKind::U, TransformKind::Iu2),
                    _ => unreachable!(),
                };
                // Both orders of assigning the pair to the two fields.
                for (first, second) in [(ka, kb), (kb, ka)] {
                    let mut kinds = vec![TransformKind::Identity; sys.num_fields()];
                    kinds[small[0]] = first;
                    kinds[small[1]] = second;
                    let Ok(assignment) = Assignment::from_kinds(sys, &kinds) else {
                        continue;
                    };
                    let fx = FxDistribution::with_assignment(assignment.clone());
                    for pattern in Pattern::all(sys.num_fields()) {
                        instances += 1;
                        if !pattern_strict_optimal(&fx, sys, pattern) {
                            fail(
                                format!("{sys} [{}] pattern {pattern:?}", assignment.describe()),
                                &mut counterexamples,
                            );
                        }
                    }
                }
            }
            Claim::Theorem9 => {
                if sys.small_fields().len() > 3 {
                    continue;
                }
                let fx = FxDistribution::auto(sys.clone()).expect("grid systems valid");
                for pattern in Pattern::all(sys.num_fields()) {
                    instances += 1;
                    if !pattern_strict_optimal(&fx, sys, pattern) {
                        fail(
                            format!("{sys} [{}] pattern {pattern:?}", fx.assignment().describe()),
                            &mut counterexamples,
                        );
                    }
                }
            }
        }
    }
    ClaimReport {
        claim,
        instances,
        counterexamples,
    }
}

/// A small deterministic family of assignments for universally-quantified
/// claims: the four strategies plus a reversed cycle.
fn sample_assignments(sys: &SystemConfig) -> Vec<Assignment> {
    use crate::assign::AssignmentStrategy as S;
    let mut out: Vec<Assignment> = [S::Basic, S::CycleIu1, S::CycleIu2, S::TheoremNine]
        .into_iter()
        .filter_map(|s| Assignment::from_strategy(sys, s).ok())
        .collect();
    // A reversed-cycle variant to vary field/kind pairings.
    let mut kinds = vec![TransformKind::Identity; sys.num_fields()];
    for (pos, field) in sys.small_fields().into_iter().rev().enumerate() {
        kinds[field] = [
            TransformKind::Identity,
            TransformKind::U,
            TransformKind::Iu1,
        ][pos % 3];
    }
    if let Ok(a) = Assignment::from_kinds(sys, &kinds) {
        out.push(a);
    }
    out.dedup_by(|a, b| a == b);
    out
}

/// Verifies every claim over the default grid.
pub fn verify_all(max_fields: usize, max_buckets: u64) -> Vec<ClaimReport> {
    let grid = default_grid(max_fields, max_buckets);
    Claim::ALL.into_iter().map(|c| verify(c, &grid)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_nonempty_and_valid() {
        let grid = default_grid(3, 256);
        assert!(grid.len() > 50);
        assert!(grid.iter().all(|s| s.total_buckets() <= 256));
    }

    /// The headline test: every claim verifies with zero counterexamples
    /// on a 3-field grid.
    #[test]
    fn all_claims_verify_small_grid() {
        for report in verify_all(3, 128) {
            assert!(
                report.verified(),
                "{}: {} counterexamples, e.g. {:?}",
                report.claim.label(),
                report.counterexamples.len(),
                report.counterexamples.first()
            );
            assert!(report.instances > 0, "{} vacuous", report.claim.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Claim::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Claim::ALL.len());
    }
}
