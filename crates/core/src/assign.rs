//! Transformation assignment: choosing one transform per field.
//!
//! FX distribution is parameterised by a per-field transformation vector.
//! Fields with `F_i ≥ M` must use the identity (the non-identity transforms
//! are only defined on proper subsets of `Z_M`, and by Theorem 2 such
//! fields never hurt optimality anyway). For the small fields the *choice*
//! of transforms determines which partial match queries enjoy strict
//! optimality — the whole point of the paper's Section 4.
//!
//! Strategies implemented:
//!
//! * [`AssignmentStrategy::Basic`] — identity everywhere (Basic FX, §3).
//! * [`AssignmentStrategy::CycleIu1`] — small fields cycle `I, U, IU1` in
//!   field order; the configuration behind the paper's Figures 1–2 and
//!   Tables 7–8.
//! * [`AssignmentStrategy::CycleIu2`] — small fields cycle `I, U, IU2`; the
//!   configuration behind Figures 3–4 and Table 9.
//! * [`AssignmentStrategy::TheoremNine`] — when at most three fields are
//!   small, the constructive assignment from Theorem 9's proof
//!   (`I` to the largest, `IU2` to the middle, `U` to the smallest), which
//!   is *perfect optimal*; with four or more small fields it falls back to
//!   a size-aware `I/U/IU2` cycle that keeps every IU2 field at least as
//!   large as every U field where possible (the §4.2 (4b)/(5b) hypothesis).

use crate::error::{Error, Result};
use crate::system::SystemConfig;
use crate::transform::{Transform, TransformKind};
use std::fmt;

/// How to choose per-field transformations for an FX distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssignmentStrategy {
    /// Identity on every field — Basic FX distribution.
    Basic,
    /// Cycle `I, U, IU1` over the small fields in index order.
    CycleIu1,
    /// Cycle `I, U, IU2` over the small fields in index order.
    CycleIu2,
    /// The Theorem 9 construction (perfect optimal for ≤ 3 small fields),
    /// with a size-aware cycle fallback beyond that. This is the
    /// recommended default.
    #[default]
    TheoremNine,
}

impl fmt::Display for AssignmentStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssignmentStrategy::Basic => "basic",
            AssignmentStrategy::CycleIu1 => "cycle-iu1",
            AssignmentStrategy::CycleIu2 => "cycle-iu2",
            AssignmentStrategy::TheoremNine => "theorem-9",
        };
        f.write_str(s)
    }
}

/// A validated per-field transformation vector for a given system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    sys: SystemConfig,
    transforms: Vec<Transform>,
}

impl Assignment {
    /// Builds an assignment by strategy.
    pub fn from_strategy(sys: &SystemConfig, strategy: AssignmentStrategy) -> Result<Self> {
        let kinds = plan_kinds(sys, strategy);
        Assignment::from_kinds(sys, &kinds)
    }

    /// Builds an assignment from explicit per-field kinds.
    ///
    /// # Errors
    ///
    /// * [`Error::TransformArityMismatch`] when `kinds.len() != n`.
    /// * [`Error::TransformRequiresSmallField`] when a non-identity kind is
    ///   given to a field with `F_i ≥ M`.
    pub fn from_kinds(sys: &SystemConfig, kinds: &[TransformKind]) -> Result<Self> {
        if kinds.len() != sys.num_fields() {
            return Err(Error::TransformArityMismatch {
                expected: sys.num_fields(),
                got: kinds.len(),
            });
        }
        let transforms = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| Transform::new(k, sys.field_size(i), sys.devices()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Assignment {
            sys: sys.clone(),
            transforms,
        })
    }

    /// Builds an assignment from pre-constructed transforms, verifying each
    /// one matches its field's size and the system's `M`.
    pub fn from_transforms(sys: &SystemConfig, transforms: Vec<Transform>) -> Result<Self> {
        if transforms.len() != sys.num_fields() {
            return Err(Error::TransformArityMismatch {
                expected: sys.num_fields(),
                got: transforms.len(),
            });
        }
        for (i, t) in transforms.iter().enumerate() {
            if t.devices() != sys.devices() {
                return Err(Error::DeviceCountMismatch {
                    transform_m: t.devices(),
                    system_m: sys.devices(),
                });
            }
            if t.field_size() != sys.field_size(i) {
                return Err(Error::FieldSizeMismatch {
                    field: i,
                    transform_size: t.field_size(),
                    field_size: sys.field_size(i),
                });
            }
        }
        Ok(Assignment {
            sys: sys.clone(),
            transforms,
        })
    }

    /// The system this assignment belongs to.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        &self.sys
    }

    /// The transform of field `i`.
    #[inline]
    pub fn transform(&self, field: usize) -> &Transform {
        &self.transforms[field]
    }

    /// All per-field transforms, in field order.
    #[inline]
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// The declared kind of field `i`'s transform.
    #[inline]
    pub fn kind(&self, field: usize) -> TransformKind {
        self.transforms[field].kind()
    }

    /// The *effective* kind of field `i` — `IU2` with `F² ≥ M` reports as
    /// `IU1` (see [`Transform::effective_kind`]); the sufficient-condition
    /// predicates reason over effective kinds.
    #[inline]
    pub fn effective_kind(&self, field: usize) -> TransformKind {
        self.transforms[field].effective_kind()
    }

    /// `true` when every field uses the identity (Basic FX).
    pub fn is_basic(&self) -> bool {
        self.transforms
            .iter()
            .all(|t| t.kind() == TransformKind::Identity)
    }

    /// Compact human-readable description, e.g. `"I,U,IU1,I,U,IU1"`.
    pub fn describe(&self) -> String {
        self.transforms
            .iter()
            .map(|t| t.kind().name())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Plans per-field kinds for a strategy (pure helper; exposed for tests and
/// for the analysis crate's figure drivers, which need to reason about the
/// planned kinds without building transforms).
pub fn plan_kinds(sys: &SystemConfig, strategy: AssignmentStrategy) -> Vec<TransformKind> {
    let n = sys.num_fields();
    let mut kinds = vec![TransformKind::Identity; n];
    match strategy {
        AssignmentStrategy::Basic => kinds,
        AssignmentStrategy::CycleIu1 => {
            cycle_assign(
                sys,
                &mut kinds,
                &[
                    TransformKind::Identity,
                    TransformKind::U,
                    TransformKind::Iu1,
                ],
            );
            kinds
        }
        AssignmentStrategy::CycleIu2 => {
            cycle_assign(
                sys,
                &mut kinds,
                &[
                    TransformKind::Identity,
                    TransformKind::U,
                    TransformKind::Iu2,
                ],
            );
            kinds
        }
        AssignmentStrategy::TheoremNine => {
            theorem_nine_assign(sys, &mut kinds);
            kinds
        }
    }
}

/// Assigns `cycle` round-robin over the small fields in index order.
fn cycle_assign(sys: &SystemConfig, kinds: &mut [TransformKind], cycle: &[TransformKind]) {
    for (pos, field) in sys.small_fields().into_iter().enumerate() {
        kinds[field] = cycle[pos % cycle.len()];
    }
}

/// The Theorem 9 construction.
///
/// With small fields `i, j, k` ordered `F_i ≥ F_k ≥ F_j`, the proof applies
/// `I(f_i)`, `U(f_j)`, `IU2(f_k)`: if `F_k² ≥ M` then `F_k·F_j`… (first
/// condition of Lemma 9.1 applies); otherwise the second condition
/// (`F_k ≥ F_j`, `F_k² < M`) applies. Either way the distribution is
/// perfect optimal. One or two small fields are the easy sub-cases
/// (Theorems 7/4 and 1/2).
///
/// With `L ≥ 4` small fields no method can be perfect optimal (\[Sung87\]);
/// we sort small fields by descending size and deal `I, IU2, U` in rotation
/// so that, within each triple, the IU2 field is at least as large as the U
/// field — keeping the §4.2 conditions (4b)/(5b) satisfiable as often as
/// possible.
fn theorem_nine_assign(sys: &SystemConfig, kinds: &mut [TransformKind]) {
    let mut small = sys.small_fields();
    // Descending size; ties broken by field index for determinism.
    small.sort_by_key(|&i| (std::cmp::Reverse(sys.field_size(i)), i));
    match small.len() {
        0 => {}
        1 => {
            // A single small field: identity suffices (Theorems 1–2 cover
            // every query pattern).
            kinds[small[0]] = TransformKind::Identity;
        }
        2 => {
            // Theorem 7: I on the larger, IU2 on the smaller is perfect
            // optimal (as are I+U and U+IU2; we follow the theorem the
            // paper proves most generally).
            kinds[small[0]] = TransformKind::Identity;
            kinds[small[1]] = TransformKind::Iu2;
        }
        3 => {
            // Theorem 9 proper: F_i ≥ F_k ≥ F_j → I, IU2, U.
            kinds[small[0]] = TransformKind::Identity;
            kinds[small[1]] = TransformKind::Iu2;
            kinds[small[2]] = TransformKind::U;
        }
        _ => {
            for (pos, &field) in small.iter().enumerate() {
                kinds[field] = [
                    TransformKind::Identity,
                    TransformKind::Iu2,
                    TransformKind::U,
                ][pos % 3];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_strategy_is_all_identity() {
        let sys = SystemConfig::new(&[2, 8, 4], 4).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::Basic).unwrap();
        assert!(a.is_basic());
        assert_eq!(a.describe(), "I,I,I");
    }

    #[test]
    fn cycle_iu1_matches_paper_tables_7_and_8() {
        // Tables 7/8: n = 6, all fields small; "I transformation for fields
        // 1 and 4, U for 2 and 5, IU1 for 3 and 6" (1-based).
        let sys = SystemConfig::new(&[8; 6], 32).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::CycleIu1).unwrap();
        assert_eq!(a.describe(), "I,U,IU1,I,U,IU1");
    }

    #[test]
    fn cycle_iu2_matches_paper_table_9() {
        let sys = SystemConfig::new(&[8, 8, 8, 16, 16, 16], 512).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::CycleIu2).unwrap();
        assert_eq!(a.describe(), "I,U,IU2,I,U,IU2");
    }

    #[test]
    fn cycle_skips_large_fields() {
        // Fields 1 and 3 are large; cycle covers only the small ones.
        let sys = SystemConfig::new(&[4, 32, 8, 64, 2], 32).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::CycleIu1).unwrap();
        assert_eq!(a.describe(), "I,I,U,I,IU1");
    }

    #[test]
    fn theorem_nine_three_small_fields() {
        // Small fields sized 8, 4, 2 (indices 0, 1, 2) on M = 16:
        // I to the largest (8), IU2 to the middle (4), U to the smallest (2).
        let sys = SystemConfig::new(&[8, 4, 2, 16], 16).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::TheoremNine).unwrap();
        assert_eq!(a.kind(0), TransformKind::Identity);
        assert_eq!(a.kind(1), TransformKind::Iu2);
        assert_eq!(a.kind(2), TransformKind::U);
        assert_eq!(a.kind(3), TransformKind::Identity);
    }

    #[test]
    fn theorem_nine_two_small_fields() {
        let sys = SystemConfig::new(&[4, 2, 16], 16).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::TheoremNine).unwrap();
        assert_eq!(a.kind(0), TransformKind::Identity);
        assert_eq!(a.kind(1), TransformKind::Iu2);
    }

    #[test]
    fn theorem_nine_many_small_fields_orders_by_size() {
        // Six small fields of sizes 16,16,8,8,4,4 on M = 512:
        // descending deal I,IU2,U,I,IU2,U by size.
        let sys = SystemConfig::new(&[4, 8, 16, 4, 8, 16], 512).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::TheoremNine).unwrap();
        // sorted fields by (desc size, asc index): 2(16),5(16),1(8),4(8),0(4),3(4)
        assert_eq!(a.kind(2), TransformKind::Identity);
        assert_eq!(a.kind(5), TransformKind::Iu2);
        assert_eq!(a.kind(1), TransformKind::U);
        assert_eq!(a.kind(4), TransformKind::Identity);
        assert_eq!(a.kind(0), TransformKind::Iu2);
        assert_eq!(a.kind(3), TransformKind::U);
    }

    #[test]
    fn from_kinds_validates() {
        let sys = SystemConfig::new(&[8, 8], 4).unwrap();
        assert!(matches!(
            Assignment::from_kinds(&sys, &[TransformKind::Identity]).unwrap_err(),
            Error::TransformArityMismatch {
                expected: 2,
                got: 1
            }
        ));
        // Field size 8 ≥ M = 4: U not allowed.
        assert!(matches!(
            Assignment::from_kinds(&sys, &[TransformKind::U, TransformKind::Identity]).unwrap_err(),
            Error::TransformRequiresSmallField { .. }
        ));
    }

    #[test]
    fn from_transforms_validates_consistency() {
        let sys = SystemConfig::new(&[4, 8], 16).unwrap();
        let wrong_m = Transform::new(TransformKind::U, 4, 32).unwrap();
        let ok1 = Transform::new(TransformKind::U, 4, 16).unwrap();
        let ok2 = Transform::new(TransformKind::Iu1, 8, 16).unwrap();
        assert!(matches!(
            Assignment::from_transforms(&sys, vec![wrong_m, ok2]).unwrap_err(),
            Error::DeviceCountMismatch {
                transform_m: 32,
                system_m: 16
            }
        ));
        let wrong_f = Transform::new(TransformKind::U, 2, 16).unwrap();
        assert!(matches!(
            Assignment::from_transforms(&sys, vec![wrong_f, ok2]).unwrap_err(),
            Error::FieldSizeMismatch {
                field: 0,
                transform_size: 2,
                field_size: 4
            }
        ));
        assert!(Assignment::from_transforms(&sys, vec![ok1, ok2]).is_ok());
    }

    #[test]
    fn effective_kind_degenerates_iu2() {
        // F = 8, M = 16: F² ≥ M so IU2 is effectively IU1.
        let sys = SystemConfig::new(&[8, 16], 16).unwrap();
        let a =
            Assignment::from_kinds(&sys, &[TransformKind::Iu2, TransformKind::Identity]).unwrap();
        assert_eq!(a.kind(0), TransformKind::Iu2);
        assert_eq!(a.effective_kind(0), TransformKind::Iu1);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(AssignmentStrategy::Basic.to_string(), "basic");
        assert_eq!(AssignmentStrategy::TheoremNine.to_string(), "theorem-9");
        assert_eq!(
            AssignmentStrategy::default(),
            AssignmentStrategy::TheoremNine
        );
    }
}
