//! # pmr-core — FX declustering for partial match retrieval
//!
//! This crate implements the data-distribution theory of **Kim & Pramanik,
//! "Optimal File Distribution For Partial Match Retrieval" (SIGMOD 1988)**:
//! given a multi-key-hashed file whose buckets are tuples
//! `<J_1, …, J_n>` with `J_i ∈ {0, …, F_i − 1}` and `M` parallel devices
//! (all sizes powers of two), decide which device stores each bucket so that
//! every *partial match query* — some fields specified, some not — spreads
//! its qualified buckets as evenly as possible across devices.
//!
//! The paper's method, **FX (Fieldwise eXclusive-or) distribution**, sends
//! bucket `<J_1, …, J_n>` to device `T_M(X_1(J_1) ⊕ … ⊕ X_n(J_n))`, where
//! `T_M` keeps the low `log2 M` bits and each `X_i` is a per-field
//! *transformation function* ([`transform`]). Fields at least as large as
//! `M` use the identity; smaller fields choose among `I`, `U`, `IU1`, `IU2`
//! to maximise the class of queries with provably optimal spread.
//!
//! ## Crate map
//!
//! * [`bits`] — the XOR set algebra (Lemmas 1.1 and 4.1) and `T_M`.
//! * [`system`] — validated bucket spaces ([`SystemConfig`]).
//! * [`query`] — partial match queries and specification [`Pattern`]s.
//! * [`transform`] — the four field transformation families.
//! * [`assign`] — strategies that pick a transform per field (including the
//!   Theorem 9 construction that is perfect optimal whenever at most three
//!   fields are smaller than `M`).
//! * [`fx`] — the [`FxDistribution`] method itself.
//! * [`general`] — generalized FX with arbitrary per-field tables (the
//!   paper's stated future-work direction; searchable via
//!   `pmr-analysis`'s optimizer).
//! * [`method`] — the [`DistributionMethod`] abstraction shared with the
//!   baselines crate.
//! * [`inverse`] — inverse mapping: per-device enumeration of qualified
//!   buckets (generic scan + FX-specific residue-indexed fast path).
//! * [`optimality`] — ground-truth response histograms and
//!   strict/k/perfect-optimality checkers.
//! * [`conditions`] — the paper's *sufficient* optimality conditions
//!   (Theorems 1–9, Corollaries 6.1 and 9.1, §4.2 summary) as predicates.
//! * [`report`] — whole-system optimality reports (per-k certified vs
//!   measured, clause histograms).
//! * [`theory`] — the theorems as machine-checkable claims, with a
//!   grid-sweep falsification harness (`verify_theorems` binary).
//!
//! ## Quick start
//!
//! ```
//! use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
//! use pmr_core::method::DistributionMethod;
//!
//! // Example 1 from the paper: two fields of sizes 2 and 8, four devices.
//! let sys = SystemConfig::new(&[2, 8], 4).unwrap();
//! let fx = FxDistribution::basic(sys.clone()).unwrap();
//!
//! // Bucket <(001)_B, (011)_B> lands on device T_4(1 ⊕ 3) = 2.
//! assert_eq!(fx.device_of(&[1, 3]), 2);
//!
//! // The distribution is strict optimal for the query <1, *>: eight
//! // qualified buckets, two per device.
//! let q = PartialMatchQuery::new(&sys, &[Some(1), None]).unwrap();
//! let hist = pmr_core::optimality::response_histogram(&fx, &sys, &q);
//! assert_eq!(hist, vec![2, 2, 2, 2]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod assign;
pub mod bits;
pub mod conditions;
pub mod error;
pub mod fx;
pub mod general;
pub mod inverse;
pub mod method;
pub mod optimality;
pub mod query;
pub mod report;
pub mod system;
pub mod theory;
pub mod transform;

pub use assign::{Assignment, AssignmentStrategy};
pub use error::{Error, Result};
pub use fx::FxDistribution;
pub use general::GeneralFxDistribution;
pub use method::DistributionMethod;
pub use query::{PartialMatchQuery, Pattern, QualifiedBuckets};
pub use system::SystemConfig;
pub use transform::{Transform, TransformKind};
