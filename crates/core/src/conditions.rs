//! The paper's *sufficient* optimality conditions as predicates.
//!
//! Section 4.2 condenses Theorems 1–9 and Corollaries 6.1/9.1 into a
//! decision procedure: given the per-field transformation assignment and a
//! query's specification pattern, decide whether FX distribution is
//! *guaranteed* strict optimal for every query with that pattern. The
//! paper's Figures 1–4 are computed from exactly these conditions ("results
//! are computed from sufficient conditions given for each method"), so this
//! module is the engine behind those reproductions.
//!
//! Being sufficient-but-not-necessary, `false` here does **not** mean a
//! query is unbalanced — the exhaustive checkers in [`crate::optimality`]
//! give ground truth, and the property tests below verify the one-sided
//! implication: *condition ⇒ measured strict optimality*.
//!
//! Conventions baked in from §4.2:
//! * An `IU2` transform on a field with `F² ≥ M` *is* `IU1`
//!   ("IU2 transformation does not apply for the field whose square of the
//!   field size is greater than or equal to M") — handled via
//!   [`crate::transform::Transform::effective_kind`].
//! * "Different transformation methods" never counts the `{IU1, IU2}`
//!   pairing ("in (3), (4)-a and (5)-a IU1 and IU2 combination do not
//!   apply").

use crate::assign::Assignment;
use crate::query::Pattern;
use crate::system::SystemConfig;
use crate::transform::TransformKind;

/// Why a pattern is (or is not) covered by the sufficient conditions.
///
/// The variants mirror the clause numbering of the §4.2 summary; they make
/// the figure reproductions explainable ("which clause fired?") and are
/// handy in test failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FxOptimalityReason {
    /// Clause (1): at most one unspecified field (Theorem 1).
    AtMostOneUnspecified,
    /// Clause (2): some unspecified field has `F ≥ M` (Theorem 2).
    LargeUnspecifiedField,
    /// Clause (3): exactly two unspecified fields with different
    /// transformation methods (Theorems 4–8).
    TwoFieldsDifferentMethods,
    /// Clause (4a)/(5a): two unspecified fields with `F_p·F_q ≥ M` and
    /// different methods (Corollaries 6.1(3) / 9.1(3)).
    PairProductCovers,
    /// Clause (4b): three unspecified fields transformed `I`, `U`, `IU2`
    /// with `F_IU2 ≥ F_U` (Lemma 9.1).
    TripleIuIu2,
    /// Clause (5b): among ≥ 4 unspecified fields, three with
    /// `F_i·F_j·F_k ≥ M` transformed `I`, `U`, `IU2` with `F_IU2 ≥ F_U`
    /// (Corollary 9.1(5)).
    TripleProductCovers,
    /// No clause applies: optimality is not guaranteed (though it may still
    /// hold empirically).
    NotGuaranteed,
}

impl FxOptimalityReason {
    /// `true` when the reason certifies strict optimality.
    pub fn is_guaranteed(self) -> bool {
        self != FxOptimalityReason::NotGuaranteed
    }
}

/// The §4.2 decision procedure: is FX with this `assignment` *guaranteed*
/// strict optimal for every query with `pattern`?
pub fn fx_pattern_guaranteed(assignment: &Assignment, pattern: Pattern) -> bool {
    fx_pattern_reason(assignment, pattern).is_guaranteed()
}

/// As [`fx_pattern_guaranteed`], but reporting which clause fired.
pub fn fx_pattern_reason(assignment: &Assignment, pattern: Pattern) -> FxOptimalityReason {
    let sys = assignment.system();
    let unspecified = pattern.unspecified_fields(sys.num_fields());

    // (1) Theorem 1: 0 or 1 unspecified fields.
    if unspecified.len() <= 1 {
        return FxOptimalityReason::AtMostOneUnspecified;
    }
    // (2) Theorem 2: an unspecified field at least as large as M.
    if unspecified.iter().any(|&i| sys.field_covers_devices(i)) {
        return FxOptimalityReason::LargeUnspecifiedField;
    }

    // All unspecified fields are now small (F < M); reason over effective
    // kinds.
    let m = sys.devices();
    let small: Vec<(usize, u64, TransformKind)> = unspecified
        .iter()
        .map(|&i| (i, sys.field_size(i), assignment.effective_kind(i)))
        .collect();

    // (3) Exactly two unspecified fields, methods differ.
    if small.len() == 2 {
        if methods_differ(small[0].2, small[1].2) {
            return FxOptimalityReason::TwoFieldsDifferentMethods;
        }
        return FxOptimalityReason::NotGuaranteed;
    }

    // (4a)/(5a): a pair with product ≥ M and different methods.
    for (ai, &(_, fa, ka)) in small.iter().enumerate() {
        for &(_, fb, kb) in &small[ai + 1..] {
            if fa.saturating_mul(fb) >= m && methods_differ(ka, kb) {
                return FxOptimalityReason::PairProductCovers;
            }
        }
    }

    // (4b): exactly three unspecified fields transformed I, U, IU2 with
    // F_IU2 ≥ F_U (no product requirement — Lemma 9.1 handles both cases).
    if small.len() == 3 && iu_iu2_triple(&small[0..3], None) {
        return FxOptimalityReason::TripleIuIu2;
    }

    // (5b): ≥ 4 unspecified fields, some triple with product ≥ M
    // transformed I, U, IU2 with F_IU2 ≥ F_U.
    if small.len() >= 4 {
        let k = small.len();
        for a in 0..k {
            for b in a + 1..k {
                for c in b + 1..k {
                    let triple = [small[a], small[b], small[c]];
                    if iu_iu2_triple(&triple, Some(m)) {
                        return FxOptimalityReason::TripleProductCovers;
                    }
                }
            }
        }
    }

    FxOptimalityReason::NotGuaranteed
}

/// "Different transformation methods", §4.1 — excluding the `{IU1, IU2}`
/// pairing per the §4.2 footnote.
fn methods_differ(a: TransformKind, b: TransformKind) -> bool {
    if a == b {
        return false;
    }
    !matches!(
        (a, b),
        (TransformKind::Iu1, TransformKind::Iu2) | (TransformKind::Iu2, TransformKind::Iu1)
    )
}

/// Checks a triple for the (4b)/(5b) shape: kinds are exactly
/// `{I, U, IU2}` (effective), `F_IU2 ≥ F_U`, and — when `min_product` is
/// given — the sizes multiply to at least that.
fn iu_iu2_triple(triple: &[(usize, u64, TransformKind)], min_product: Option<u64>) -> bool {
    debug_assert_eq!(triple.len(), 3);
    let mut f_u = None;
    let mut f_iu2 = None;
    let mut has_i = false;
    for &(_, f, k) in triple {
        match k {
            TransformKind::Identity if !has_i => has_i = true,
            TransformKind::U if f_u.is_none() => f_u = Some(f),
            TransformKind::Iu2 if f_iu2.is_none() => f_iu2 = Some(f),
            _ => return false, // duplicate or foreign kind
        }
    }
    let (Some(fu), Some(fiu2)) = (f_u, f_iu2) else {
        return false;
    };
    if !has_i || fiu2 < fu {
        return false;
    }
    match min_product {
        None => true,
        Some(m) => {
            let product = triple
                .iter()
                .map(|&(_, f, _)| f)
                .fold(1u64, u64::saturating_mul);
            product >= m
        }
    }
}

/// Theorem 1 as a standalone predicate: FX (any assignment) is strict
/// optimal for patterns with ≤ 1 unspecified field.
pub fn theorem_1_applies(pattern: Pattern) -> bool {
    pattern.unspecified_count() <= 1
}

/// Theorem 2 as a standalone predicate: strict optimal when ≥ 2 fields are
/// unspecified and at least one of them has `F ≥ M`.
pub fn theorem_2_applies(sys: &SystemConfig, pattern: Pattern) -> bool {
    pattern.unspecified_count() >= 2
        && pattern
            .unspecified_fields(sys.num_fields())
            .iter()
            .any(|&i| sys.field_covers_devices(i))
}

/// Theorem 9 as a standalone predicate on a whole system: with at most
/// three small fields, FX with I/U/IU2 transforms *can* be perfect optimal.
pub fn theorem_9_applies(sys: &SystemConfig) -> bool {
    sys.small_fields().len() <= 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, AssignmentStrategy};
    use crate::fx::FxDistribution;
    use crate::optimality::pattern_strict_optimal;

    fn assignment(fields: &[u64], m: u64, kinds: &[TransformKind]) -> Assignment {
        let sys = SystemConfig::new(fields, m).unwrap();
        Assignment::from_kinds(&sys, kinds).unwrap()
    }

    #[test]
    fn clause_1_small_patterns() {
        let a = assignment(
            &[4, 4],
            16,
            &[TransformKind::Identity, TransformKind::Identity],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::EXACT),
            FxOptimalityReason::AtMostOneUnspecified
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[1])),
            FxOptimalityReason::AtMostOneUnspecified
        );
        // Two same-kind small fields: not guaranteed.
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1])),
            FxOptimalityReason::NotGuaranteed
        );
    }

    #[test]
    fn clause_2_large_field() {
        let a = assignment(
            &[4, 32],
            16,
            &[TransformKind::Identity, TransformKind::Identity],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1])),
            FxOptimalityReason::LargeUnspecifiedField
        );
    }

    #[test]
    fn clause_3_two_fields_different_methods() {
        let a = assignment(&[4, 4], 16, &[TransformKind::Identity, TransformKind::U]);
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1])),
            FxOptimalityReason::TwoFieldsDifferentMethods
        );
    }

    /// IU1/IU2 never counts as "different methods".
    #[test]
    fn iu1_iu2_pairing_excluded() {
        // F = 2, M = 16 keeps IU2 genuine (4 < 16).
        let a = assignment(&[2, 2], 16, &[TransformKind::Iu1, TransformKind::Iu2]);
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1])),
            FxOptimalityReason::NotGuaranteed
        );
        // …and degenerate IU2 ≡ IU1 is literally the same method.
        let a = assignment(&[8, 8], 16, &[TransformKind::Iu1, TransformKind::Iu2]);
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1])),
            FxOptimalityReason::NotGuaranteed
        );
    }

    #[test]
    fn clause_4a_pair_product() {
        // Three small fields of size 8 on M = 32: pairs reach 64 ≥ 32.
        let a = assignment(
            &[8, 8, 8, 8, 8, 8],
            32,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu1,
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu1,
            ],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1, 3])),
            FxOptimalityReason::PairProductCovers
        );
        // All-same-kind triple: no qualifying pair.
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 3])),
            FxOptimalityReason::NotGuaranteed
        );
    }

    #[test]
    fn clause_4b_triple() {
        // Pairwise products < M = 512 (4·8 = 32), triple has I, U, IU2.
        let a = assignment(
            &[8, 4, 8],
            512,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu2,
            ],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1, 2])),
            FxOptimalityReason::TripleIuIu2
        );
        // Violating F_IU2 ≥ F_U: IU2 field smaller than U field.
        let a = assignment(
            &[8, 8, 4],
            512,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu2,
            ],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1, 2])),
            FxOptimalityReason::NotGuaranteed
        );
    }

    #[test]
    fn clause_5b_triple_product() {
        // Six small fields of size 8 on M = 512: pairwise 64 < 512,
        // triple 512 ≥ 512. Kinds cycle I, U, IU2.
        let a = assignment(
            &[8; 6],
            512,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu2,
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu2,
            ],
        );
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1, 2, 3])),
            FxOptimalityReason::TripleProductCovers
        );
        // A 4-pattern missing one of the kinds: not guaranteed.
        assert_eq!(
            fx_pattern_reason(&a, Pattern::from_unspecified(&[0, 1, 3, 4])),
            FxOptimalityReason::NotGuaranteed
        );
    }

    /// The one-sided soundness check: on a battery of small systems, every
    /// pattern the conditions certify must measure strict optimal.
    #[test]
    fn conditions_imply_measured_optimality() {
        let cases: [(&[u64], u64, AssignmentStrategy); 7] = [
            (&[2, 8], 4, AssignmentStrategy::Basic),
            (&[4, 4], 16, AssignmentStrategy::CycleIu1),
            (&[4, 4, 4], 16, AssignmentStrategy::CycleIu1),
            (&[2, 4, 2], 8, AssignmentStrategy::CycleIu1),
            (&[4, 2, 2], 16, AssignmentStrategy::CycleIu2),
            (&[2, 2, 2, 2], 16, AssignmentStrategy::CycleIu2),
            (&[4, 4, 2, 8], 16, AssignmentStrategy::TheoremNine),
        ];
        for (fields, m, strategy) in cases {
            let sys = SystemConfig::new(fields, m).unwrap();
            let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
            for pattern in Pattern::all(sys.num_fields()) {
                let reason = fx_pattern_reason(fx.assignment(), pattern);
                if reason.is_guaranteed() {
                    assert!(
                        pattern_strict_optimal(&fx, &sys, pattern),
                        "{sys} [{}] pattern {pattern:?}: condition {reason:?} fired \
                         but distribution is not strict optimal",
                        fx.assignment().describe()
                    );
                }
            }
        }
    }

    /// The conditions are sufficient, not necessary: the excluded
    /// `{IU1, IU2}` pairing can still measure optimal. With `F = (2, 2)` on
    /// `M = 16`, `IU1(f) = {0, 9}` and `IU2(f) = {0, 13}` XOR to four
    /// distinct addresses `{0, 13, 9, 4}`, so the fully-unspecified query is
    /// strict optimal even though no clause certifies it (documents the
    /// one-sidedness the paper's figures inherit).
    #[test]
    fn conditions_are_not_necessary() {
        let sys = SystemConfig::new(&[2, 2], 16).unwrap();
        let a = Assignment::from_kinds(&sys, &[TransformKind::Iu1, TransformKind::Iu2]).unwrap();
        let fx = FxDistribution::with_assignment(a.clone());
        let pattern = Pattern::from_unspecified(&[0, 1]);
        assert!(!fx_pattern_guaranteed(&a, pattern));
        assert!(pattern_strict_optimal(&fx, &sys, pattern));
    }

    #[test]
    fn standalone_theorem_predicates() {
        let sys = SystemConfig::new(&[4, 32], 16).unwrap();
        assert!(theorem_1_applies(Pattern::from_unspecified(&[0])));
        assert!(!theorem_1_applies(Pattern::from_unspecified(&[0, 1])));
        assert!(theorem_2_applies(&sys, Pattern::from_unspecified(&[0, 1])));
        assert!(!theorem_2_applies(&sys, Pattern::from_unspecified(&[0])));
        assert!(theorem_9_applies(&sys));
        let sys4 = SystemConfig::new(&[2, 2, 2, 2], 16).unwrap();
        assert!(!theorem_9_applies(&sys4));
    }
}
