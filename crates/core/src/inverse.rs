//! Inverse mapping: which qualified buckets live on *this* device?
//!
//! After distribution, each device answering a partial match query must
//! find the qualified buckets it stores — the paper calls this *inverse
//! mapping* and argues (§4.2, §5.2.2) that FX's XOR structure makes it
//! cheap, which matters for main-memory databases where address
//! computation dominates.
//!
//! Two paths are provided:
//!
//! * [`scan_device_buckets`] — generic: enumerate `R(q)` and filter by
//!   `device_of`. Works for any [`DistributionMethod`]; cost
//!   `O(|R(q)| · n)` per device, i.e. `M` times more total work than
//!   necessary when every device runs it.
//! * [`FxInverse`] — FX-specific: exploits
//!   `device = T_M(h ⊕ X_{i₁}(J_{i₁}) ⊕ … ⊕ X_{i_k}(J_{i_k}))` by indexing
//!   one unspecified field's values by their device-residue class and
//!   enumerating only the combinations of the *other* unspecified fields.
//!   Cost `O(|R(q)| / M)` amortised per device (output-sensitive): each
//!   device enumerates only what it owns, so the `M` devices collectively
//!   do `O(|R(q)|)` work.

use crate::fx::FxDistribution;
use crate::method::DistributionMethod;
use crate::query::{PartialMatchQuery, Pattern};
use crate::system::SystemConfig;
use std::sync::Arc;

/// Generic inverse mapping: qualified buckets of `query` on `device`,
/// found by scanning `R(q)`.
///
/// Buckets are returned in query-odometer order. This allocates one
/// `Vec<u64>` per owned bucket — a compatibility shim over
/// [`for_each_device_bucket`]; hot paths should use the `for_each`
/// variants (or the packed [`for_each_device_code`]) instead.
pub fn scan_device_buckets<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
    device: u64,
) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    for_each_device_bucket(method, sys, query, device, |b| out.push(b.to_vec()));
    out
}

/// Allocation-free generic inverse mapping: visits every qualified bucket
/// of `query` on `device` as a transient tuple view, in query-odometer
/// order.
pub fn for_each_device_bucket<D, F>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
    device: u64,
    mut f: F,
) where
    D: DistributionMethod + ?Sized,
    F: FnMut(&[u64]),
{
    let mut it = query.qualified_buckets(sys);
    while let Some(bucket) = it.next_bucket() {
        if method.device_of(bucket) == device {
            f(bucket);
        }
    }
}

/// Packed generic inverse mapping: visits the packed code of every
/// qualified bucket of `query` on `device`, in query-odometer order.
///
/// Codes are linear indices ([`SystemConfig::packed_layout`]), so they key
/// device stores directly; the whole scan touches no tuple at all.
pub fn for_each_device_code<D, F>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
    device: u64,
    mut f: F,
) where
    D: DistributionMethod + ?Sized,
    F: FnMut(u64),
{
    // Odometer codes are drained into a reusable stack buffer and scored
    // in bulk through `device_of_batch`, so the per-code cost is one lane
    // of the batched kernel instead of a full scalar `device_of_packed`.
    // Matching codes are emitted in fill order, which is odometer order —
    // bit-equal to the scalar filter loop this replaces.
    const BATCH: usize = 64;
    let mut codes = [0u64; BATCH];
    let mut devs = [0u64; BATCH];
    let mut owned = 0u64;
    let mut it = query.qualified_buckets(sys);
    loop {
        let mut n = 0;
        while n < BATCH {
            match it.next_code() {
                Some(code) => {
                    codes[n] = code;
                    n += 1;
                }
                None => break,
            }
        }
        if n == 0 {
            break;
        }
        method.device_of_batch(&codes[..n], &mut devs[..n]);
        for i in 0..n {
            if devs[i] == device {
                owned += 1;
                f(codes[i]);
            }
        }
        if n < BATCH {
            break;
        }
    }
    pmr_rt::obs::counter_add("inverse.codes_scanned", query.qualified_count_in(sys));
    pmr_rt::obs::counter_add("inverse.codes_enumerated", owned);
}

/// One free (non-pivot unspecified) field of an [`InversePlan`]: its index
/// plus the packed shift/mask needed to run the odometer directly on a
/// code.
#[derive(Debug, Clone, Copy)]
struct FreeField {
    field: usize,
    shift: u32,
    /// `F − 1` (pre-shift).
    mask: u64,
}

/// The pattern-level part of FX's fast inverse mapping: pivot choice and
/// pivot residue classes.
///
/// Everything here depends only on the (distribution, [`Pattern`]) pair —
/// the specified *values* of a concrete query enter later as the XOR
/// constant `h`, which by Lemma 1.1 merely rotates the residue lookup.
/// Plans are therefore built once per pattern and cached on the
/// distribution ([`FxDistribution::inverse_plan`]).
#[derive(Debug)]
pub struct InversePlan {
    pattern: Pattern,
    /// The pivot unspecified field, if any.
    pivot: Option<usize>,
    /// Unspecified fields other than the pivot, in field order.
    free_fields: Vec<FreeField>,
    /// For the pivot: residue class `T_M(X(J))` → values `J` in that class.
    pivot_classes: Vec<Vec<u64>>,
    /// The same classes with each value pre-shifted into packed position
    /// (`J << pivot_shift`), so emitting a code is a single OR.
    pivot_class_codes: Vec<Vec<u64>>,
}

impl InversePlan {
    /// Builds the plan for a pattern under `fx`. Exposed for
    /// [`FxDistribution::inverse_plan`]; use that accessor to get caching.
    pub fn build(fx: &FxDistribution, pattern: Pattern) -> InversePlan {
        let sys = fx.system();
        let layout = sys.packed_layout();
        let mut unspecified = pattern.unspecified_fields(sys.num_fields());
        // Pivot choice: the unspecified field with the largest size, so the
        // residue index carries the most pruning power (any choice is
        // correct; this one minimises the enumerated remainder).
        let pivot = unspecified
            .iter()
            .copied()
            .max_by_key(|&i| (sys.field_size(i), std::cmp::Reverse(i)));
        if let Some(p) = pivot {
            unspecified.retain(|&i| i != p);
        }
        let m = sys.devices();
        let (pivot_classes, pivot_class_codes) = match pivot {
            None => (Vec::new(), Vec::new()),
            Some(p) => {
                let shift = layout.shift(p);
                let mut classes = vec![Vec::new(); m as usize];
                let mut codes = vec![Vec::new(); m as usize];
                for j in 0..sys.field_size(p) {
                    let class = crate::bits::t_m(fx.apply_field(p, j), m) as usize;
                    classes[class].push(j);
                    codes[class].push(j << shift);
                }
                (classes, codes)
            }
        };
        let free_fields = unspecified
            .iter()
            .map(|&i| FreeField {
                field: i,
                shift: layout.shift(i),
                mask: layout.mask(i),
            })
            .collect();
        InversePlan {
            pattern,
            pivot,
            free_fields,
            pivot_classes,
            pivot_class_codes,
        }
    }

    /// The pattern this plan serves.
    #[inline]
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The pivot field, if the pattern has any unspecified field.
    #[inline]
    pub fn pivot(&self) -> Option<usize> {
        self.pivot
    }

    /// Pivot values in residue class `class` (empty for exact-match
    /// patterns). Class `c` holds exactly the `J` with `T_M(X_p(J)) = c`.
    #[inline]
    pub fn pivot_class(&self, class: u64) -> &[u64] {
        &self.pivot_classes[class as usize]
    }
}

/// FX-specific fast inverse mapping for one query.
///
/// Built once per (distribution, query) pair and then queried per device.
/// The *pivot* is the unspecified field whose transformed values are
/// indexed by residue class `T_M(X(J))`; all other unspecified fields are
/// enumerated by odometer and the pivot values completing the target device
/// are looked up in O(1).
///
/// # Examples
///
/// ```
/// use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
/// use pmr_core::inverse::FxInverse;
/// use pmr_core::method::DistributionMethod;
///
/// let sys = SystemConfig::new(&[2, 8], 4).unwrap();
/// let fx = FxDistribution::basic(sys.clone()).unwrap();
/// let q = PartialMatchQuery::new(&sys, &[Some(1), None]).unwrap();
/// let inv = FxInverse::new(&fx, &q);
/// // Device 0 holds <1,1> and <1,5> (Table 1).
/// assert_eq!(inv.buckets_on(0), vec![vec![1, 1], vec![1, 5]]);
/// ```
pub struct FxInverse<'a> {
    fx: &'a FxDistribution,
    /// XOR of transformed specified values.
    h: u64,
    /// Packed code of the query's specified values (unspecified bits 0).
    base_code: u64,
    /// The pattern-level plan (pivot + residue classes), from the
    /// distribution's per-pattern cache.
    plan: Arc<InversePlan>,
}

impl<'a> FxInverse<'a> {
    /// Prepares the inverse mapping for `query` under `fx`.
    ///
    /// The pattern-level work (pivot choice, residue classes) comes from
    /// the distribution's plan cache; only the query-specific XOR constant
    /// `h` and the packed base code are computed here.
    pub fn new(fx: &'a FxDistribution, query: &'a PartialMatchQuery) -> Self {
        let sys = fx.system();
        debug_assert_eq!(query.values().len(), sys.num_fields());
        let h = fx.specified_xor(query.values());
        let layout = sys.packed_layout();
        let base_code = query.values().iter().enumerate().fold(0u64, |acc, (i, v)| {
            acc | (v.unwrap_or(0) << layout.shift(i))
        });
        let plan = fx.inverse_plan(query.pattern());
        FxInverse {
            fx,
            h,
            base_code,
            plan,
        }
    }

    /// All qualified buckets of the query residing on `device`.
    pub fn buckets_on(&self, device: u64) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        self.for_each_bucket_on(device, |b| out.push(b.to_vec()));
        out
    }

    /// Number of qualified buckets on `device` — the device's response size
    /// `r_device(q)`, computed without materialising buckets.
    pub fn response_size(&self, device: u64) -> u64 {
        let mut count = 0u64;
        self.for_each_code_on(device, |_| count += 1);
        count
    }

    /// Visits every qualified bucket on `device`, passing a transient view
    /// of the bucket tuple. A convenience wrapper over
    /// [`FxInverse::for_each_code_on`] (one unpack per owned bucket).
    pub fn for_each_bucket_on<F: FnMut(&[u64])>(&self, device: u64, mut f: F) {
        let layout = self.fx.system().packed_layout();
        let mut buf = vec![0u64; layout.num_fields()];
        self.for_each_code_on(device, |code| {
            layout.unpack_into(code, &mut buf);
            f(&buf);
        });
    }

    /// Visits the packed code of every qualified bucket on `device` —
    /// the allocation-free hot path. Codes are linear indices, directly
    /// usable as device-store keys.
    ///
    /// Cost: `O(|R(q)| / F_pivot)` free-field odometer settings, each
    /// emitting exactly its share of owned buckets — `O(|R(q)| / M)`
    /// amortised per device, `O(|R(q)|)` across all `M` devices, versus
    /// `O(M · |R(q)|)` for the generic per-device scan.
    pub fn for_each_code_on<F: FnMut(u64)>(&self, device: u64, mut f: F) {
        let sys = self.fx.system();
        let m = sys.devices();
        debug_assert!(device < m);
        let plan = &*self.plan;

        if plan.pivot.is_none() {
            // Exact-match query: single bucket, on the device iff the
            // device address matches.
            if crate::bits::t_m(self.h, m) == device {
                f(self.base_code);
                pmr_rt::obs::counter_add("inverse.codes_enumerated", 1);
            }
            return;
        }
        let mut emitted = 0u64;

        // Odometer over the non-pivot unspecified fields, run directly on
        // the packed code; for each setting, the pivot's transformed value
        // must satisfy
        //   T_M(h ⊕ acc ⊕ X_p(J_p)) = device
        // ⇔ T_M(X_p(J_p)) = device ⊕ T_M(h ⊕ acc),
        // so the candidates are exactly one residue class, pre-shifted
        // into packed position.
        let mut code = self.base_code;
        loop {
            let mut acc = self.h;
            for ff in &plan.free_fields {
                acc ^= self.fx.apply_field(ff.field, (code >> ff.shift) & ff.mask);
            }
            let class = device ^ crate::bits::t_m(acc, m);
            let class_codes = &plan.pivot_class_codes[class as usize];
            emitted += class_codes.len() as u64;
            for &jcode in class_codes {
                debug_assert_eq!(self.fx.device_of_packed(code | jcode), device);
                f(code | jcode);
            }
            // Advance the free-field odometer (last field fastest).
            let mut advanced = false;
            for ff in plan.free_fields.iter().rev() {
                if (code >> ff.shift) & ff.mask < ff.mask {
                    code += 1u64 << ff.shift;
                    advanced = true;
                    break;
                }
                code &= !(ff.mask << ff.shift);
            }
            if !advanced {
                pmr_rt::obs::counter_add("inverse.codes_enumerated", emitted);
                return;
            }
        }
    }

    /// The pattern-level plan backing this inverse mapping.
    #[inline]
    pub fn plan(&self) -> &InversePlan {
        &self.plan
    }

    /// Decomposes the mapping into its query-level parts: the XOR
    /// constant `h`, the packed base code, and the shared pattern plan.
    /// Together with [`FxInverse::from_parts`] this lets a batch executor
    /// derive the parts once per query and rebuild the mapping on every
    /// per-device worker without re-entering the plan cache.
    #[inline]
    pub fn into_parts(self) -> (u64, u64, Arc<InversePlan>) {
        (self.h, self.base_code, self.plan)
    }

    /// Rebuilds a mapping from parts produced by
    /// [`FxInverse::into_parts`] under the same distribution and query —
    /// no transforms applied, no plan-cache lookup, just an `Arc` clone.
    #[inline]
    pub fn from_parts(
        fx: &'a FxDistribution,
        h: u64,
        base_code: u64,
        plan: Arc<InversePlan>,
    ) -> Self {
        FxInverse {
            fx,
            h,
            base_code,
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AssignmentStrategy;
    use crate::query::Pattern;
    use crate::system::SystemConfig;

    fn all_queries(sys: &SystemConfig) -> Vec<PartialMatchQuery> {
        let mut queries = Vec::new();
        for pattern in Pattern::all(sys.num_fields()) {
            crate::optimality::for_each_query(sys, pattern, |q| {
                queries.push(q.clone());
                true
            });
        }
        queries
    }

    /// The fast FX inverse agrees with the generic scan on every query of
    /// several small systems, for every device.
    #[test]
    fn fx_inverse_matches_scan_exhaustive() {
        let configs: [(&[u64], u64, AssignmentStrategy); 4] = [
            (&[2, 8], 4, AssignmentStrategy::Basic),
            (&[4, 4], 16, AssignmentStrategy::CycleIu1),
            (&[2, 4, 2], 8, AssignmentStrategy::CycleIu1),
            (&[4, 2, 2], 16, AssignmentStrategy::CycleIu2),
        ];
        for (fields, m, strategy) in configs {
            let sys = SystemConfig::new(fields, m).unwrap();
            let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
            for q in all_queries(&sys) {
                let inv = FxInverse::new(&fx, &q);
                for device in 0..sys.devices() {
                    let mut fast = inv.buckets_on(device);
                    let mut slow = scan_device_buckets(&fx, &sys, &q, device);
                    fast.sort();
                    slow.sort();
                    assert_eq!(fast, slow, "{sys} query {q} device {device}");
                }
            }
        }
    }

    /// Response sizes from the inverse mapping match the forward histogram.
    #[test]
    fn response_sizes_match_histogram() {
        let sys = SystemConfig::new(&[4, 4, 2], 8).unwrap();
        let fx =
            FxDistribution::with_strategy(sys.clone(), AssignmentStrategy::TheoremNine).unwrap();
        for q in all_queries(&sys) {
            let hist = crate::optimality::response_histogram(&fx, &sys, &q);
            let inv = FxInverse::new(&fx, &q);
            for device in 0..sys.devices() {
                assert_eq!(inv.response_size(device), hist[device as usize]);
            }
        }
    }

    /// Union of per-device inverse mappings is exactly R(q), disjointly.
    #[test]
    fn inverse_partitions_qualified_set() {
        let sys = SystemConfig::new(&[4, 8], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let q = PartialMatchQuery::new(&sys, &[None, None]).unwrap();
        let inv = FxInverse::new(&fx, &q);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for device in 0..sys.devices() {
            for b in inv.buckets_on(device) {
                assert!(seen.insert(sys.linear_index(&b)), "duplicate bucket {b:?}");
                total += 1;
            }
        }
        assert_eq!(total, q.qualified_count_in(&sys));
    }

    /// Exact-match queries: the single bucket appears on exactly one device.
    #[test]
    fn exact_match_single_device() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        let q = PartialMatchQuery::exact(&sys, &[1, 3]).unwrap();
        let inv = FxInverse::new(&fx, &q);
        let home = fx.device_of(&[1, 3]);
        for device in 0..sys.devices() {
            let buckets = inv.buckets_on(device);
            if device == home {
                assert_eq!(buckets, vec![vec![1, 3]]);
            } else {
                assert!(buckets.is_empty());
            }
        }
    }

    /// Packed enumeration (`for_each_code_on` / `for_each_device_code`)
    /// agrees with the tuple paths on every query of small systems.
    #[test]
    fn packed_paths_match_tuple_paths() {
        let configs: [(&[u64], u64, AssignmentStrategy); 3] = [
            (&[2, 8], 4, AssignmentStrategy::Basic),
            (&[2, 4, 2], 8, AssignmentStrategy::CycleIu1),
            (&[4, 2, 2], 16, AssignmentStrategy::CycleIu2),
        ];
        for (fields, m, strategy) in configs {
            let sys = SystemConfig::new(fields, m).unwrap();
            let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
            for q in all_queries(&sys) {
                let inv = FxInverse::new(&fx, &q);
                for device in 0..sys.devices() {
                    let mut fast_codes = Vec::new();
                    inv.for_each_code_on(device, |c| fast_codes.push(c));
                    let mut scan_codes = Vec::new();
                    for_each_device_code(&fx, &sys, &q, device, |c| scan_codes.push(c));
                    let mut from_buckets: Vec<u64> = scan_device_buckets(&fx, &sys, &q, device)
                        .iter()
                        .map(|b| sys.linear_index(b))
                        .collect();
                    fast_codes.sort_unstable();
                    scan_codes.sort_unstable();
                    from_buckets.sort_unstable();
                    assert_eq!(fast_codes, scan_codes, "{sys} query {q} device {device}");
                    assert_eq!(fast_codes, from_buckets, "{sys} query {q} device {device}");
                }
            }
        }
    }

    /// Two queries sharing a pattern reuse the cached plan; the plan's
    /// residue classes partition the pivot's value range.
    #[test]
    fn plan_is_shared_across_queries_of_a_pattern() {
        let sys = SystemConfig::new(&[4, 8], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let q1 = PartialMatchQuery::new(&sys, &[Some(1), None]).unwrap();
        let q2 = PartialMatchQuery::new(&sys, &[Some(3), None]).unwrap();
        let i1 = FxInverse::new(&fx, &q1);
        let i2 = FxInverse::new(&fx, &q2);
        assert!(
            std::ptr::eq(i1.plan(), i2.plan()),
            "same pattern, same plan"
        );
        let plan = i1.plan();
        assert_eq!(plan.pivot(), Some(1));
        let total: usize = (0..sys.devices()).map(|c| plan.pivot_class(c).len()).sum();
        assert_eq!(total as u64, sys.field_size(1));
    }

    #[test]
    fn scan_works_for_arbitrary_methods() {
        struct SumMod(SystemConfig);
        impl DistributionMethod for SumMod {
            fn device_of(&self, b: &[u64]) -> u64 {
                b.iter().sum::<u64>() % self.0.devices()
            }
            fn system(&self) -> &SystemConfig {
                &self.0
            }
            fn name(&self) -> String {
                "sum-mod".into()
            }
        }
        let sys = SystemConfig::new(&[4, 4], 4).unwrap();
        let m = SumMod(sys.clone());
        let q = PartialMatchQuery::new(&sys, &[None, Some(1)]).unwrap();
        let on_1 = scan_device_buckets(&m, &sys, &q, 1);
        assert_eq!(on_1, vec![vec![0, 1]]); // only 0+1 ≡ 1 (mod 4)
    }
}
