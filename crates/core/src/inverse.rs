//! Inverse mapping: which qualified buckets live on *this* device?
//!
//! After distribution, each device answering a partial match query must
//! find the qualified buckets it stores — the paper calls this *inverse
//! mapping* and argues (§4.2, §5.2.2) that FX's XOR structure makes it
//! cheap, which matters for main-memory databases where address
//! computation dominates.
//!
//! Two paths are provided:
//!
//! * [`scan_device_buckets`] — generic: enumerate `R(q)` and filter by
//!   `device_of`. Works for any [`DistributionMethod`]; cost
//!   `O(|R(q)| · n)` per device, i.e. `M` times more total work than
//!   necessary when every device runs it.
//! * [`FxInverse`] — FX-specific: exploits
//!   `device = T_M(h ⊕ X_{i₁}(J_{i₁}) ⊕ … ⊕ X_{i_k}(J_{i_k}))` by indexing
//!   one unspecified field's values by their device-residue class and
//!   enumerating only the combinations of the *other* unspecified fields.
//!   Cost `O(|R(q)| / M)` amortised per device (output-sensitive): each
//!   device enumerates only what it owns, so the `M` devices collectively
//!   do `O(|R(q)|)` work.

use crate::fx::FxDistribution;
use crate::method::DistributionMethod;
use crate::query::PartialMatchQuery;
use crate::system::SystemConfig;

/// Generic inverse mapping: qualified buckets of `query` on `device`,
/// found by scanning `R(q)`.
///
/// Buckets are returned in query-odometer order.
pub fn scan_device_buckets<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
    device: u64,
) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut it = query.qualified_buckets(sys);
    while let Some(bucket) = it.next_bucket() {
        if method.device_of(bucket) == device {
            out.push(bucket.to_vec());
        }
    }
    out
}

/// FX-specific fast inverse mapping for one query.
///
/// Built once per (distribution, query) pair and then queried per device.
/// The *pivot* is the unspecified field whose transformed values are
/// indexed by residue class `T_M(X(J))`; all other unspecified fields are
/// enumerated by odometer and the pivot values completing the target device
/// are looked up in O(1).
///
/// # Examples
///
/// ```
/// use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
/// use pmr_core::inverse::FxInverse;
/// use pmr_core::method::DistributionMethod;
///
/// let sys = SystemConfig::new(&[2, 8], 4).unwrap();
/// let fx = FxDistribution::basic(sys.clone()).unwrap();
/// let q = PartialMatchQuery::new(&sys, &[Some(1), None]).unwrap();
/// let inv = FxInverse::new(&fx, &q);
/// // Device 0 holds <1,1> and <1,5> (Table 1).
/// assert_eq!(inv.buckets_on(0), vec![vec![1, 1], vec![1, 5]]);
/// ```
pub struct FxInverse<'a> {
    fx: &'a FxDistribution,
    query: &'a PartialMatchQuery,
    /// XOR of transformed specified values.
    h: u64,
    /// Unspecified fields other than the pivot.
    free_fields: Vec<usize>,
    /// The pivot unspecified field, if any.
    pivot: Option<usize>,
    /// For the pivot: residue class `T_M(X(J))` → values `J` in that class.
    pivot_classes: Vec<Vec<u64>>,
}

impl<'a> FxInverse<'a> {
    /// Prepares the inverse mapping for `query` under `fx`.
    pub fn new(fx: &'a FxDistribution, query: &'a PartialMatchQuery) -> Self {
        let sys = fx.system();
        debug_assert_eq!(query.values().len(), sys.num_fields());
        let h = fx.specified_xor(query.values());
        let mut unspecified = query.pattern().unspecified_fields(sys.num_fields());
        // Pivot choice: the unspecified field with the largest size, so the
        // residue index carries the most pruning power (any choice is
        // correct; this one minimises the enumerated remainder).
        let pivot = unspecified
            .iter()
            .copied()
            .max_by_key(|&i| (sys.field_size(i), std::cmp::Reverse(i)));
        if let Some(p) = pivot {
            unspecified.retain(|&i| i != p);
        }
        let m = sys.devices();
        let pivot_classes = match pivot {
            None => Vec::new(),
            Some(p) => {
                let t = fx.assignment().transform(p);
                let mut classes = vec![Vec::new(); m as usize];
                for j in 0..sys.field_size(p) {
                    let class = crate::bits::t_m(t.apply(j), m);
                    classes[class as usize].push(j);
                }
                classes
            }
        };
        FxInverse { fx, query, h, free_fields: unspecified, pivot, pivot_classes }
    }

    /// All qualified buckets of the query residing on `device`.
    pub fn buckets_on(&self, device: u64) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        self.for_each_bucket_on(device, |b| out.push(b.to_vec()));
        out
    }

    /// Number of qualified buckets on `device` — the device's response size
    /// `r_device(q)`, computed without materialising buckets.
    pub fn response_size(&self, device: u64) -> u64 {
        let mut count = 0u64;
        self.for_each_bucket_on(device, |_| count += 1);
        count
    }

    /// Visits every qualified bucket on `device`, passing a transient view
    /// of the bucket tuple.
    pub fn for_each_bucket_on<F: FnMut(&[u64])>(&self, device: u64, mut f: F) {
        let sys = self.fx.system();
        let m = sys.devices();
        debug_assert!(device < m);
        let mut bucket: Vec<u64> =
            self.query.values().iter().map(|v| v.unwrap_or(0)).collect();

        let Some(pivot) = self.pivot else {
            // Exact-match query: single bucket, on the device iff the
            // device address matches.
            if crate::bits::t_m(self.h, m) == device {
                f(&bucket);
            }
            return;
        };

        let pivot_transform = self.fx.assignment().transform(pivot);
        // Odometer over the non-pivot unspecified fields; for each setting,
        // the pivot's transformed value must satisfy
        //   T_M(h ⊕ acc ⊕ X_p(J_p)) = device
        // ⇔ T_M(X_p(J_p)) = device ⊕ T_M(h ⊕ acc),
        // so the candidates are exactly one residue class.
        loop {
            let mut acc = self.h;
            for &fld in &self.free_fields {
                acc ^= self.fx.assignment().transform(fld).apply(bucket[fld]);
            }
            let class = device ^ crate::bits::t_m(acc, m);
            for &j in &self.pivot_classes[class as usize] {
                bucket[pivot] = j;
                debug_assert_eq!(
                    crate::bits::t_m(acc ^ pivot_transform.apply(j), m),
                    device
                );
                f(&bucket);
            }
            // Advance the free-field odometer.
            let mut advanced = false;
            for &fld in self.free_fields.iter().rev() {
                bucket[fld] += 1;
                if bucket[fld] < sys.field_size(fld) {
                    advanced = true;
                    break;
                }
                bucket[fld] = 0;
            }
            if !advanced {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AssignmentStrategy;
    use crate::query::Pattern;
    use crate::system::SystemConfig;

    fn all_queries(sys: &SystemConfig) -> Vec<PartialMatchQuery> {
        let mut queries = Vec::new();
        for pattern in Pattern::all(sys.num_fields()) {
            crate::optimality::for_each_query(sys, pattern, |q| {
                queries.push(q.clone());
                true
            });
        }
        queries
    }

    /// The fast FX inverse agrees with the generic scan on every query of
    /// several small systems, for every device.
    #[test]
    fn fx_inverse_matches_scan_exhaustive() {
        let configs: [(&[u64], u64, AssignmentStrategy); 4] = [
            (&[2, 8], 4, AssignmentStrategy::Basic),
            (&[4, 4], 16, AssignmentStrategy::CycleIu1),
            (&[2, 4, 2], 8, AssignmentStrategy::CycleIu1),
            (&[4, 2, 2], 16, AssignmentStrategy::CycleIu2),
        ];
        for (fields, m, strategy) in configs {
            let sys = SystemConfig::new(fields, m).unwrap();
            let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
            for q in all_queries(&sys) {
                let inv = FxInverse::new(&fx, &q);
                for device in 0..sys.devices() {
                    let mut fast = inv.buckets_on(device);
                    let mut slow = scan_device_buckets(&fx, &sys, &q, device);
                    fast.sort();
                    slow.sort();
                    assert_eq!(fast, slow, "{sys} query {q} device {device}");
                }
            }
        }
    }

    /// Response sizes from the inverse mapping match the forward histogram.
    #[test]
    fn response_sizes_match_histogram() {
        let sys = SystemConfig::new(&[4, 4, 2], 8).unwrap();
        let fx =
            FxDistribution::with_strategy(sys.clone(), AssignmentStrategy::TheoremNine).unwrap();
        for q in all_queries(&sys) {
            let hist = crate::optimality::response_histogram(&fx, &sys, &q);
            let inv = FxInverse::new(&fx, &q);
            for device in 0..sys.devices() {
                assert_eq!(inv.response_size(device), hist[device as usize]);
            }
        }
    }

    /// Union of per-device inverse mappings is exactly R(q), disjointly.
    #[test]
    fn inverse_partitions_qualified_set() {
        let sys = SystemConfig::new(&[4, 8], 8).unwrap();
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        let q = PartialMatchQuery::new(&sys, &[None, None]).unwrap();
        let inv = FxInverse::new(&fx, &q);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for device in 0..sys.devices() {
            for b in inv.buckets_on(device) {
                assert!(seen.insert(sys.linear_index(&b)), "duplicate bucket {b:?}");
                total += 1;
            }
        }
        assert_eq!(total, q.qualified_count_in(&sys));
    }

    /// Exact-match queries: the single bucket appears on exactly one device.
    #[test]
    fn exact_match_single_device() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        let q = PartialMatchQuery::exact(&sys, &[1, 3]).unwrap();
        let inv = FxInverse::new(&fx, &q);
        let home = fx.device_of(&[1, 3]);
        for device in 0..sys.devices() {
            let buckets = inv.buckets_on(device);
            if device == home {
                assert_eq!(buckets, vec![vec![1, 3]]);
            } else {
                assert!(buckets.is_empty());
            }
        }
    }

    #[test]
    fn scan_works_for_arbitrary_methods() {
        struct SumMod(SystemConfig);
        impl DistributionMethod for SumMod {
            fn device_of(&self, b: &[u64]) -> u64 {
                b.iter().sum::<u64>() % self.0.devices()
            }
            fn system(&self) -> &SystemConfig {
                &self.0
            }
            fn name(&self) -> String {
                "sum-mod".into()
            }
        }
        let sys = SystemConfig::new(&[4, 4], 4).unwrap();
        let m = SumMod(sys.clone());
        let q = PartialMatchQuery::new(&sys, &[None, Some(1)]).unwrap();
        let on_1 = scan_device_buckets(&m, &sys, &q, 1);
        assert_eq!(on_1, vec![vec![0, 1]]); // only 0+1 ≡ 1 (mod 4)
    }
}
