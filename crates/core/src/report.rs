//! Whole-system optimality reports.
//!
//! [`OptimalityReport`] rolls up, for one system and FX assignment, the
//! per-`k` certified and measured strict-optimality counts plus a
//! histogram of *which* §4.2 clause certified each pattern — the
//! diagnostic view behind `pmr analyze` and a convenient structure for
//! downstream tooling.

use crate::assign::Assignment;
use crate::conditions::{fx_pattern_reason, FxOptimalityReason};
use crate::fx::FxDistribution;
use crate::optimality::pattern_strict_optimal;
use crate::query::Pattern;
use crate::system::SystemConfig;

/// Per-`k` roll-up of a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KRow {
    /// Number of unspecified fields.
    pub k: u32,
    /// Patterns with this `k` (`C(n, k)`).
    pub patterns: u64,
    /// Patterns certified by the §4.2 sufficient conditions.
    pub certified: u64,
    /// Patterns measured strict optimal (only when measurement ran).
    pub measured: Option<u64>,
}

/// A whole-system optimality report for an FX assignment.
#[derive(Debug, Clone)]
pub struct OptimalityReport {
    /// The system analysed.
    pub system: SystemConfig,
    /// The assignment description (e.g. `"I,U,IU1"`).
    pub assignment: String,
    /// Per-`k` rows, `k = 0 … n`.
    pub rows: Vec<KRow>,
    /// How often each certification clause fired, over all patterns.
    pub reasons: Vec<(FxOptimalityReason, u64)>,
    /// Whether ground-truth measurement was performed.
    pub measured: bool,
}

/// Bucket-space size above which [`OptimalityReport::analyze`] skips the
/// exhaustive measurement and reports conditions only.
pub const MEASUREMENT_LIMIT: u64 = 1 << 22;

impl OptimalityReport {
    /// Builds the report; measures ground truth when the bucket space is
    /// within [`MEASUREMENT_LIMIT`].
    pub fn analyze(assignment: &Assignment) -> Self {
        let sys = assignment.system().clone();
        let n = sys.num_fields();
        let measure = sys.total_buckets() <= MEASUREMENT_LIMIT;
        let fx = FxDistribution::with_assignment(assignment.clone());

        let mut rows = Vec::with_capacity(n + 1);
        let mut reason_counts: Vec<(FxOptimalityReason, u64)> = Vec::new();
        for k in 0..=n as u32 {
            let mut patterns = 0u64;
            let mut certified = 0u64;
            let mut measured_count = 0u64;
            for pattern in Pattern::with_unspecified_count(n, k) {
                patterns += 1;
                let reason = fx_pattern_reason(assignment, pattern);
                if reason.is_guaranteed() {
                    certified += 1;
                }
                match reason_counts.iter_mut().find(|(r, _)| *r == reason) {
                    Some((_, c)) => *c += 1,
                    None => reason_counts.push((reason, 1)),
                }
                if measure && pattern_strict_optimal(&fx, &sys, pattern) {
                    measured_count += 1;
                }
            }
            rows.push(KRow {
                k,
                patterns,
                certified,
                measured: measure.then_some(measured_count),
            });
        }
        reason_counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        OptimalityReport {
            system: sys,
            assignment: assignment.describe(),
            rows,
            reasons: reason_counts,
            measured: measure,
        }
    }

    /// Total patterns (`2^n`).
    pub fn total_patterns(&self) -> u64 {
        self.rows.iter().map(|r| r.patterns).sum()
    }

    /// Certified fraction over all patterns.
    pub fn certified_fraction(&self) -> f64 {
        let certified: u64 = self.rows.iter().map(|r| r.certified).sum();
        certified as f64 / self.total_patterns() as f64
    }

    /// Measured fraction over all patterns (`None` when measurement was
    /// skipped).
    pub fn measured_fraction(&self) -> Option<f64> {
        if !self.measured {
            return None;
        }
        let measured: u64 = self.rows.iter().filter_map(|r| r.measured).sum();
        Some(measured as f64 / self.total_patterns() as f64)
    }

    /// `true` when every pattern measured strict optimal.
    pub fn is_perfect(&self) -> Option<bool> {
        self.measured_fraction().map(|f| (f - 1.0).abs() < 1e-12)
    }

    /// Plain-text rendering (the `pmr analyze` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.system));
        out.push_str(&format!("FX assignment: {}\n", self.assignment));
        out.push_str(&format!(
            "small fields (F < M): {} of {}\n\n",
            self.system.small_fields().len(),
            self.system.num_fields()
        ));
        out.push_str(&format!(
            "{:>2}  {:>9}  {:>16}  {:>16}\n",
            "k", "patterns", "certified", "measured"
        ));
        for row in &self.rows {
            let measured = match row.measured {
                Some(c) => format!("{c:>10}/{:<5}", row.patterns),
                None => "      (skipped)".to_owned(),
            };
            out.push_str(&format!(
                "{:>2}  {:>9}  {:>10}/{:<5}  {measured}\n",
                row.k, row.patterns, row.certified, row.patterns
            ));
        }
        out.push('\n');
        out.push_str("certification clauses fired:\n");
        for (reason, count) in &self.reasons {
            out.push_str(&format!("  {reason:?}: {count}\n"));
        }
        out.push_str(&format!(
            "\ncertified strict-optimal patterns: {:.1}%\n",
            100.0 * self.certified_fraction()
        ));
        if let Some(f) = self.measured_fraction() {
            out.push_str(&format!(
                "measured  strict-optimal patterns: {:.1}%\n",
                100.0 * f
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AssignmentStrategy;

    #[test]
    fn report_on_perfect_system() {
        let sys = SystemConfig::new(&[4, 2, 8], 16).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::TheoremNine).unwrap();
        let report = OptimalityReport::analyze(&a);
        assert_eq!(report.total_patterns(), 8);
        assert_eq!(report.is_perfect(), Some(true));
        assert_eq!(report.measured_fraction(), Some(1.0));
        // Certified ≤ measured row by row.
        for row in &report.rows {
            assert!(row.certified <= row.measured.unwrap());
        }
        let text = report.render();
        assert!(text.contains("FX assignment"));
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn report_on_imperfect_system() {
        let sys = SystemConfig::new(&[4; 4], 16).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::CycleIu1).unwrap();
        let report = OptimalityReport::analyze(&a);
        assert_eq!(report.is_perfect(), Some(false));
        // Reasons histogram accounts for every pattern.
        let reason_total: u64 = report.reasons.iter().map(|&(_, c)| c).sum();
        assert_eq!(reason_total, report.total_patterns());
        assert!(report
            .reasons
            .iter()
            .any(|&(r, _)| r == FxOptimalityReason::NotGuaranteed));
    }

    #[test]
    fn measurement_skipped_for_huge_spaces() {
        // 2^30 buckets exceed the measurement limit.
        let sys = SystemConfig::new(&[1 << 15, 1 << 15], 4).unwrap();
        let a = Assignment::from_strategy(&sys, AssignmentStrategy::Basic).unwrap();
        let report = OptimalityReport::analyze(&a);
        assert!(!report.measured);
        assert_eq!(report.measured_fraction(), None);
        assert_eq!(report.is_perfect(), None);
        assert!(report.render().contains("(skipped)"));
        // Conditions still evaluated.
        assert!(report.certified_fraction() > 0.0);
    }
}
