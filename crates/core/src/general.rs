//! Generalized FX: arbitrary per-field transformation tables.
//!
//! The paper closes with: "We are developing more general transformation
//! functions to achieve optimal data distribution for much larger class
//! of partial match queries in more general file systems." This module
//! implements that direction: an FX-shaped method whose per-field
//! transformations are *arbitrary tables* rather than the four closed
//! forms `I`/`U`/`IU1`/`IU2`.
//!
//! The XOR backbone is retained — device `= T_M(t_1[J_1] ⊕ … ⊕ t_n[J_n])`
//! — so Lemma 1.1 still applies: specified values only permute the
//! response histogram (shift invariance), and Theorems 1–2 carry over
//! whenever each table satisfies the *M-regularity* invariant enforced at
//! construction:
//!
//! * a field with `F < M` must map injectively into `Z_M`;
//! * a field with `F ≥ M` must hit every residue class of `Z_M` exactly
//!   `F / M` times (the identity does).
//!
//! What the closed forms buy is *provable* optimality for specific query
//! classes; what tables buy is a **search space** — see
//! `pmr_analysis::optimize` for a simulated-annealing optimizer that
//! finds tables beating every closed-form assignment on systems with
//! four or more small fields (where \[Sung87\] rules out perfection but
//! not improvement).

use crate::assign::Assignment;
use crate::bits::t_m;
use crate::error::{Error, Result};
use crate::method::DistributionMethod;
use crate::system::SystemConfig;

/// FX with arbitrary (validated) per-field transformation tables.
///
/// # Examples
///
/// ```
/// use pmr_core::general::GeneralFxDistribution;
/// use pmr_core::method::DistributionMethod;
/// use pmr_core::SystemConfig;
///
/// let sys = SystemConfig::new(&[2, 8], 4).unwrap();
/// // Field 0 maps {0,1} -> {0,3}; field 1 keeps the identity.
/// let g = GeneralFxDistribution::new(
///     sys,
///     vec![vec![0, 3], (0..8).collect()],
/// ).unwrap();
/// assert_eq!(g.device_of(&[1, 1]), 2); // T_4(3 ^ 1)
/// ```
#[derive(Debug, Clone)]
pub struct GeneralFxDistribution {
    sys: SystemConfig,
    tables: Vec<Box<[u64]>>,
}

impl GeneralFxDistribution {
    /// Builds a generalized FX method, validating the M-regularity
    /// invariant for every table.
    ///
    /// # Errors
    ///
    /// * [`Error::TransformArityMismatch`] when the table count differs
    ///   from the field count, or a table's length differs from its
    ///   field's size.
    /// * [`Error::ValueOutOfRange`] when a small field's table escapes
    ///   `Z_M`, repeats a value, or a large field's table is not
    ///   M-regular.
    pub fn new(sys: SystemConfig, tables: Vec<Vec<u64>>) -> Result<Self> {
        if tables.len() != sys.num_fields() {
            return Err(Error::TransformArityMismatch {
                expected: sys.num_fields(),
                got: tables.len(),
            });
        }
        let m = sys.devices();
        for (field, table) in tables.iter().enumerate() {
            let f = sys.field_size(field);
            if table.len() as u64 != f {
                return Err(Error::TransformArityMismatch {
                    expected: f as usize,
                    got: table.len(),
                });
            }
            if f < m {
                // Injective into Z_M.
                let mut seen = vec![false; m as usize];
                for &v in table {
                    if v >= m || seen[v as usize] {
                        return Err(Error::ValueOutOfRange {
                            field,
                            value: v,
                            field_size: m,
                        });
                    }
                    seen[v as usize] = true;
                }
            } else {
                // M-regular: every residue class hit exactly F/M times.
                let mut counts = vec![0u64; m as usize];
                for &v in table {
                    counts[t_m(v, m) as usize] += 1;
                }
                let expected = f / m;
                if counts.iter().any(|&c| c != expected) {
                    return Err(Error::ValueOutOfRange {
                        field,
                        value: counts.len() as u64,
                        field_size: m,
                    });
                }
            }
        }
        Ok(GeneralFxDistribution {
            sys,
            tables: tables.into_iter().map(Vec::into_boxed_slice).collect(),
        })
    }

    /// Embeds a classic FX assignment (its transform images become the
    /// tables).
    pub fn from_assignment(assignment: &Assignment) -> Self {
        let sys = assignment.system().clone();
        let tables = assignment
            .transforms()
            .iter()
            .map(|t| t.image().into_boxed_slice())
            .collect();
        GeneralFxDistribution { sys, tables }
    }

    /// The per-field tables.
    pub fn tables(&self) -> &[Box<[u64]>] {
        &self.tables
    }

    /// Returns a copy with field `field`'s table replaced (revalidated).
    pub fn with_table(&self, field: usize, table: Vec<u64>) -> Result<Self> {
        let mut tables: Vec<Vec<u64>> = self.tables.iter().map(|t| t.to_vec()).collect();
        if field >= tables.len() {
            return Err(Error::FieldOutOfRange {
                field,
                num_fields: tables.len(),
            });
        }
        tables[field] = table;
        GeneralFxDistribution::new(self.sys.clone(), tables)
    }
}

impl DistributionMethod for GeneralFxDistribution {
    #[inline]
    fn device_of(&self, bucket: &[u64]) -> u64 {
        debug_assert_eq!(bucket.len(), self.sys.num_fields());
        let mut acc = 0u64;
        for (table, &v) in self.tables.iter().zip(bucket) {
            acc ^= table[v as usize];
        }
        t_m(acc, self.sys.devices())
    }

    /// Table lookups straight off the packed bits — no tuple needed.
    #[inline]
    fn device_of_packed(&self, code: u64) -> u64 {
        let layout = self.sys.packed_layout();
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[layout.field(code, i) as usize];
        }
        t_m(acc, self.sys.devices())
    }

    /// Eight-lane batched gather: per field, the table slice and the
    /// shift/mask pair are hoisted out of the per-code loop, so each lane
    /// is extract → load → XOR with independent accumulator chains (see
    /// DESIGN "Batched address computation").
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        assert_eq!(codes.len(), out.len(), "device_of_batch buffers must match");
        pmr_rt::obs::counter_add("addr.batch_calls", 1);
        const LANES: usize = 8;
        let layout = self.sys.packed_layout();
        let m1 = self.sys.devices() - 1;
        let mut code_chunks = codes.chunks_exact(LANES);
        let mut out_chunks = out.chunks_exact_mut(LANES);
        for (chunk, slot) in (&mut code_chunks).zip(&mut out_chunks) {
            let mut acc = [0u64; LANES];
            for (i, table) in self.tables.iter().enumerate() {
                let table = &table[..];
                let shift = layout.shift(i);
                let mask = layout.mask(i);
                for lane in 0..LANES {
                    acc[lane] ^= table[((chunk[lane] >> shift) & mask) as usize];
                }
            }
            for lane in 0..LANES {
                slot[lane] = acc[lane] & m1;
            }
        }
        for (&code, slot) in code_chunks
            .remainder()
            .iter()
            .zip(out_chunks.into_remainder())
        {
            *slot = self.device_of_packed(code);
        }
    }

    fn system(&self) -> &SystemConfig {
        &self.sys
    }

    fn name(&self) -> String {
        "GeneralFX".to_owned()
    }

    /// Still XOR-structured: Lemma 1.1 applies unchanged.
    fn histogram_shift_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AssignmentStrategy;
    use crate::fx::FxDistribution;
    use crate::optimality::{is_k_optimal, pattern_strict_optimal, response_histogram};
    use crate::query::{PartialMatchQuery, Pattern};

    #[test]
    fn validation_rejects_bad_tables() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        // Wrong table count.
        assert!(GeneralFxDistribution::new(sys.clone(), vec![vec![0, 1]]).is_err());
        // Wrong table length.
        assert!(GeneralFxDistribution::new(sys.clone(), vec![vec![0], (0..8).collect()]).is_err());
        // Small field escaping Z_M.
        assert!(
            GeneralFxDistribution::new(sys.clone(), vec![vec![0, 4], (0..8).collect()]).is_err()
        );
        // Small field repeating a value.
        assert!(
            GeneralFxDistribution::new(sys.clone(), vec![vec![2, 2], (0..8).collect()]).is_err()
        );
        // Large field not M-regular (residue 0 hit 3 times).
        assert!(GeneralFxDistribution::new(
            sys.clone(),
            vec![vec![0, 1], vec![0, 4, 8, 1, 2, 3, 5, 6]],
        )
        .is_err());
        // Valid: M-regular non-identity large-field table.
        assert!(
            GeneralFxDistribution::new(sys, vec![vec![0, 1], vec![4, 5, 6, 7, 0, 1, 2, 3]],)
                .is_ok()
        );
    }

    /// Embedding classic FX gives the identical distribution.
    #[test]
    fn embedding_matches_classic_fx() {
        for strategy in [
            AssignmentStrategy::Basic,
            AssignmentStrategy::CycleIu1,
            AssignmentStrategy::CycleIu2,
            AssignmentStrategy::TheoremNine,
        ] {
            let sys = SystemConfig::new(&[4, 2, 8], 16).unwrap();
            let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
            let g = GeneralFxDistribution::from_assignment(fx.assignment());
            let mut buf = Vec::new();
            for idx in sys.all_indices() {
                sys.decode_index(idx, &mut buf);
                assert_eq!(
                    fx.device_of(&buf),
                    g.device_of(&buf),
                    "{strategy:?} {buf:?}"
                );
            }
        }
    }

    /// Theorems 1 and 2 carry over to any valid table set: 0/1-optimality
    /// always; ≥2-unspecified patterns with a large unspecified field.
    #[test]
    fn theorems_1_2_hold_for_general_tables() {
        let sys = SystemConfig::new(&[2, 8, 4], 4).unwrap();
        // Hand-rolled tables: a scramble for each field, all valid.
        let g = GeneralFxDistribution::new(
            sys.clone(),
            vec![
                vec![3, 1],
                vec![7, 2, 4, 1, 0, 6, 3, 5], // permutation of Z_8: M-regular for M=4
                vec![2, 0, 3, 1],
            ],
        )
        .unwrap();
        assert!(is_k_optimal(&g, &sys, 0));
        assert!(is_k_optimal(&g, &sys, 1));
        for pattern in Pattern::all(3) {
            let unspec = pattern.unspecified_fields(3);
            if unspec.len() >= 2 && unspec.iter().any(|&i| sys.field_covers_devices(i)) {
                assert!(pattern_strict_optimal(&g, &sys, pattern), "{pattern:?}");
            }
        }
    }

    /// Shift invariance holds for general tables (Lemma 1.1).
    #[test]
    fn shift_invariance_holds() {
        let sys = SystemConfig::new(&[4, 4], 8).unwrap();
        let g = GeneralFxDistribution::new(sys.clone(), vec![vec![5, 2, 7, 0], vec![1, 4, 6, 3]])
            .unwrap();
        assert!(g.histogram_shift_invariant());
        for pattern in Pattern::all(2) {
            let mut reference = response_histogram(
                &g,
                &sys,
                &PartialMatchQuery::zero_representative(&sys, pattern),
            );
            reference.sort_unstable();
            let ok = crate::optimality::for_each_query(&sys, pattern, |q| {
                let mut h = response_histogram(&g, &sys, q);
                h.sort_unstable();
                h == reference
            });
            assert!(ok, "{pattern:?}");
        }
    }

    /// The eight-lane batched path is bit-equal to the scalar packed path
    /// at every batch length (full lanes plus the scalar tail).
    #[test]
    fn device_of_batch_matches_scalar() {
        let sys = SystemConfig::new(&[4, 4], 8).unwrap();
        let g = GeneralFxDistribution::new(sys.clone(), vec![vec![5, 2, 7, 0], vec![1, 4, 6, 3]])
            .unwrap();
        let codes: Vec<u64> = sys.all_indices().collect();
        for len in [0, 3, 8, 11, codes.len()] {
            let mut out = vec![u64::MAX; len];
            g.device_of_batch(&codes[..len], &mut out);
            for (&code, &dev) in codes[..len].iter().zip(&out) {
                assert_eq!(dev, g.device_of_packed(code), "len {len} code {code}");
            }
        }
    }

    #[test]
    fn with_table_replaces_and_revalidates() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let g = GeneralFxDistribution::new(sys, vec![vec![0, 1], (0..8).collect()]).unwrap();
        let g2 = g.with_table(0, vec![0, 2]).unwrap();
        assert_eq!(&*g2.tables()[0], &[0, 2]);
        assert!(g.with_table(0, vec![0, 9]).is_err());
        assert!(g.with_table(5, vec![0, 1]).is_err());
    }
}
