//! Ground-truth optimality checking (paper §2 definitions).
//!
//! * The *response size* of device `i` for query `q` is the number of
//!   qualified buckets residing on `i`.
//! * A distribution is **strict optimal** for `q` when no device's response
//!   size exceeds `ceil(|R(q)| / M)`.
//! * It is **k-optimal** when strict optimal for *every* query with exactly
//!   `k` unspecified fields, and **perfect optimal** when k-optimal for all
//!   `k = 0 … n`.
//!
//! Everything here is exhaustive and definition-level: no sufficient
//! conditions, no shortcuts (apart from the opt-in shift-invariance fast
//! path, which is itself validated against the exhaustive path by property
//! tests). These checkers are the referee for the paper's theorems and for
//! the analysis crate.

use crate::bits::ceil_div;
use crate::method::DistributionMethod;
use crate::query::{PartialMatchQuery, Pattern};
use crate::system::SystemConfig;

/// Per-device response sizes (`r_i(q)` in the paper) for one query.
///
/// The returned vector has length `M`; entry `z` counts qualified buckets
/// on device `z`.
pub fn response_histogram<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
) -> Vec<u64> {
    let mut hist = vec![0u64; sys.devices() as usize];
    let mut it = query.qualified_buckets(sys);
    while let Some(code) = it.next_code() {
        hist[method.device_of_packed(code) as usize] += 1;
    }
    hist
}

/// The *largest response size* `MAX(r_0(q), …, r_{M−1}(q))` — the paper's
/// response-time proxy for symmetric parallel devices (§5.2.1).
pub fn largest_response<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
) -> u64 {
    response_histogram(method, sys, query)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// The strict-optimality bound `ceil(|R(q)| / M)` for a query.
pub fn optimal_bound(sys: &SystemConfig, query: &PartialMatchQuery) -> u64 {
    ceil_div(query.qualified_count_in(sys), sys.devices())
}

/// `true` when `method` is strict optimal for `query`.
pub fn is_strict_optimal<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    query: &PartialMatchQuery,
) -> bool {
    largest_response(method, sys, query) <= optimal_bound(sys, query)
}

/// `true` when `method` is strict optimal for **every** query with the
/// given specification pattern.
///
/// When the method declares [`DistributionMethod::histogram_shift_invariant`]
/// only the zero representative is evaluated; otherwise every
/// `∏ F_specified` value combination is checked.
pub fn pattern_strict_optimal<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    pattern: Pattern,
) -> bool {
    if method.histogram_shift_invariant() {
        let q = PartialMatchQuery::zero_representative(sys, pattern);
        return is_strict_optimal(method, sys, &q);
    }
    for_each_query(sys, pattern, |q| is_strict_optimal(method, sys, q))
}

/// Worst (largest) response size across every query with the pattern —
/// with the shift-invariance shortcut when available.
pub fn pattern_largest_response<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    pattern: Pattern,
) -> u64 {
    if method.histogram_shift_invariant() {
        let q = PartialMatchQuery::zero_representative(sys, pattern);
        return largest_response(method, sys, &q);
    }
    let mut worst = 0;
    for_each_query(sys, pattern, |q| {
        worst = worst.max(largest_response(method, sys, q));
        true
    });
    worst
}

/// `true` when `method` is k-optimal: strict optimal for all queries with
/// exactly `k` unspecified fields.
pub fn is_k_optimal<D: DistributionMethod + ?Sized>(
    method: &D,
    sys: &SystemConfig,
    k: u32,
) -> bool {
    Pattern::with_unspecified_count(sys.num_fields(), k)
        .all(|p| pattern_strict_optimal(method, sys, p))
}

/// `true` when `method` is perfect optimal: k-optimal for every
/// `k = 0 … n`. Exhaustive — intended for the small systems of the paper's
/// examples and for tests.
pub fn is_perfect_optimal<D: DistributionMethod + ?Sized>(method: &D, sys: &SystemConfig) -> bool {
    Pattern::all(sys.num_fields()).all(|p| pattern_strict_optimal(method, sys, p))
}

/// Invokes `f` on every query with the given pattern (odometer over the
/// specified fields' values); stops early and returns `false` the first
/// time `f` does. Returns `true` when `f` held for every query.
pub fn for_each_query<F>(sys: &SystemConfig, pattern: Pattern, mut f: F) -> bool
where
    F: FnMut(&PartialMatchQuery) -> bool,
{
    let n = sys.num_fields();
    let specified: Vec<usize> = pattern.specified_fields(n);
    let mut values: Vec<Option<u64>> = (0..n)
        .map(|i| {
            if pattern.is_unspecified(i) {
                None
            } else {
                Some(0)
            }
        })
        .collect();
    loop {
        let q =
            PartialMatchQuery::new(sys, &values).expect("odometer generates only valid queries");
        if !f(&q) {
            return false;
        }
        // Advance the specified-value odometer (last specified field
        // fastest).
        let mut advanced = false;
        for &field in specified.iter().rev() {
            let v = values[field].as_mut().expect("specified field");
            *v += 1;
            if *v < sys.field_size(field) {
                advanced = true;
                break;
            }
            *v = 0;
        }
        if !advanced {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, AssignmentStrategy};
    use crate::fx::FxDistribution;
    use crate::transform::TransformKind;

    fn example_1() -> (SystemConfig, FxDistribution) {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        (sys, fx)
    }

    /// "Since each device has two qualified buckets for this partial match
    /// query, FX distribution is strict optimal for this query."
    #[test]
    fn example_1_query_histogram() {
        let (sys, fx) = example_1();
        let q = PartialMatchQuery::new(&sys, &[Some(1), None]).unwrap();
        assert_eq!(response_histogram(&fx, &sys, &q), vec![2, 2, 2, 2]);
        assert_eq!(largest_response(&fx, &sys, &q), 2);
        assert_eq!(optimal_bound(&sys, &q), 2);
        assert!(is_strict_optimal(&fx, &sys, &q));
    }

    /// "Basic FX distribution is strict optimal for any partial match query
    /// in a file system of example 1" — i.e. perfect optimal there.
    #[test]
    fn example_1_perfect_optimal() {
        let (sys, fx) = example_1();
        assert!(is_perfect_optimal(&fx, &sys));
    }

    /// Theorem 1: Basic FX is always 0-optimal and 1-optimal — checked on a
    /// batch of assorted systems.
    #[test]
    fn theorem_1_zero_and_one_optimal() {
        for (fields, m) in [
            (vec![2u64, 8], 4u64),
            (vec![4, 4], 16),
            (vec![2, 2, 2], 16),
            (vec![8, 2, 4], 8),
            (vec![16, 16], 4),
        ] {
            let sys = SystemConfig::new(&fields, m).unwrap();
            let fx = FxDistribution::basic(sys.clone()).unwrap();
            assert!(is_k_optimal(&fx, &sys, 0), "{sys} not 0-optimal");
            assert!(is_k_optimal(&fx, &sys, 1), "{sys} not 1-optimal");
        }
    }

    /// Theorem 2: queries with ≥ 2 unspecified fields are strict optimal
    /// under Basic FX when at least one unspecified field has F ≥ M.
    #[test]
    fn theorem_2_large_unspecified_field() {
        let sys = SystemConfig::new(&[2, 8, 4], 4).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        // Fields 1 (F=8) and 2 (F=4) are ≥ M=4.
        for pattern in [
            Pattern::from_unspecified(&[0, 1]),
            Pattern::from_unspecified(&[0, 2]),
            Pattern::from_unspecified(&[1, 2]),
            Pattern::from_unspecified(&[0, 1, 2]),
        ] {
            assert!(pattern_strict_optimal(&fx, &sys, pattern), "{pattern:?}");
        }
    }

    /// The §3 counterexample: with M = 16 and F = (2, 8), Basic FX is NOT
    /// optimal for the fully-unspecified query…
    #[test]
    fn section_3_counterexample_basic_fx() {
        let sys = SystemConfig::new(&[2, 8], 16).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        let q = PartialMatchQuery::new(&sys, &[None, None]).unwrap();
        assert!(!is_strict_optimal(&fx, &sys, &q));
        assert!(!is_perfect_optimal(&fx, &sys));
    }

    /// …but substituting (1000)_B for (001)_B in the f1 column — a U
    /// transform — makes it perfect optimal.
    #[test]
    fn section_3_fix_with_u_transform() {
        let sys = SystemConfig::new(&[2, 8], 16).unwrap();
        let a = Assignment::from_kinds(&sys, &[TransformKind::U, TransformKind::Identity]).unwrap();
        let fx = FxDistribution::with_assignment(a);
        assert!(is_perfect_optimal(&fx, &sys));
    }

    /// Theorem 4 (Example 3): I + U on F = (4, 4), M = 16 is perfect
    /// optimal.
    #[test]
    fn theorem_4_perfect_optimal() {
        let sys = SystemConfig::new(&[4, 4], 16).unwrap();
        let a = Assignment::from_kinds(&sys, &[TransformKind::Identity, TransformKind::U]).unwrap();
        assert!(is_perfect_optimal(
            &FxDistribution::with_assignment(a),
            &sys
        ));
    }

    /// Theorem 5 (Example 5): I + IU1 on F = (4, 4), M = 16.
    #[test]
    fn theorem_5_perfect_optimal() {
        let sys = SystemConfig::new(&[4, 4], 16).unwrap();
        let a =
            Assignment::from_kinds(&sys, &[TransformKind::Identity, TransformKind::Iu1]).unwrap();
        assert!(is_perfect_optimal(
            &FxDistribution::with_assignment(a),
            &sys
        ));
    }

    /// Theorem 6: U + IU1 with two small fields.
    #[test]
    fn theorem_6_perfect_optimal() {
        for (f, m) in [(vec![4u64, 4], 16u64), (vec![2, 8], 16), (vec![4, 8], 32)] {
            let sys = SystemConfig::new(&f, m).unwrap();
            let a = Assignment::from_kinds(&sys, &[TransformKind::U, TransformKind::Iu1]).unwrap();
            assert!(
                is_perfect_optimal(&FxDistribution::with_assignment(a), &sys),
                "U+IU1 on {sys}"
            );
        }
    }

    /// Theorems 7/8: I + IU2 and U + IU2 with two small fields.
    #[test]
    fn theorems_7_8_perfect_optimal() {
        for kinds in [
            [TransformKind::Identity, TransformKind::Iu2],
            [TransformKind::U, TransformKind::Iu2],
        ] {
            for (f, m) in [(vec![8u64, 2], 16u64), (vec![2, 2], 16), (vec![4, 2], 32)] {
                let sys = SystemConfig::new(&f, m).unwrap();
                let a = Assignment::from_kinds(&sys, &kinds).unwrap();
                assert!(
                    is_perfect_optimal(&FxDistribution::with_assignment(a), &sys),
                    "{kinds:?} on {sys}"
                );
            }
        }
    }

    /// Theorem 9: with ≤ 3 small fields the auto assignment is perfect
    /// optimal — including the tricky L = 3 all-small cases.
    #[test]
    fn theorem_9_perfect_optimal() {
        for (f, m) in [
            (vec![4u64, 2, 2], 16u64),
            (vec![8, 4, 2], 16),
            (vec![2, 2, 2], 16),
            (vec![8, 8, 2], 16),
            (vec![4, 4, 4], 32),
            (vec![2, 4, 8], 32),
            (vec![4, 2, 2, 32], 32),
        ] {
            let sys = SystemConfig::new(&f, m).unwrap();
            let fx = FxDistribution::auto(sys.clone()).unwrap();
            assert!(
                is_perfect_optimal(&fx, &sys),
                "auto FX on {sys} ({})",
                fx.assignment().describe()
            );
        }
    }

    /// Example 6's system (Table 4): I, U, IU1 on F = (2, 4, 2), M = 8 is
    /// perfect optimal (all three pairwise methods differ).
    #[test]
    fn table_4_system_perfect_optimal() {
        let sys = SystemConfig::new(&[2, 4, 2], 8).unwrap();
        let a = Assignment::from_kinds(
            &sys,
            &[
                TransformKind::Identity,
                TransformKind::U,
                TransformKind::Iu1,
            ],
        )
        .unwrap();
        assert!(is_perfect_optimal(
            &FxDistribution::with_assignment(a),
            &sys
        ));
    }

    /// Same-transform small fields break optimality: I + I on
    /// F = (4, 4), M = 16 is not 2-optimal.
    #[test]
    fn same_transforms_not_optimal() {
        let sys = SystemConfig::new(&[4, 4], 16).unwrap();
        let fx = FxDistribution::basic(sys.clone()).unwrap();
        assert!(is_k_optimal(&fx, &sys, 0));
        assert!(is_k_optimal(&fx, &sys, 1));
        assert!(!is_k_optimal(&fx, &sys, 2));
    }

    #[test]
    fn for_each_query_counts() {
        let sys = SystemConfig::new(&[2, 4, 2], 8).unwrap();
        let pattern = Pattern::from_unspecified(&[1]);
        let mut count = 0;
        for_each_query(&sys, pattern, |_| {
            count += 1;
            true
        });
        assert_eq!(count, 4); // F_0 · F_2 = 2 · 2 specified combos.
    }

    #[test]
    fn for_each_query_early_exit() {
        let sys = SystemConfig::new(&[4, 4], 4).unwrap();
        let mut count = 0;
        let all = for_each_query(&sys, Pattern::EXACT, |_| {
            count += 1;
            count < 3
        });
        assert!(!all);
        assert_eq!(count, 3);
    }

    /// Shift-invariance fast path agrees with the exhaustive path for FX.
    #[test]
    fn fast_path_matches_exhaustive() {
        let sys = SystemConfig::new(&[4, 4, 2], 8).unwrap();
        let fx = FxDistribution::with_strategy(sys.clone(), AssignmentStrategy::CycleIu1).unwrap();

        /// Wrapper hiding the invariance declaration.
        struct NoInvariance<'a>(&'a FxDistribution);
        impl DistributionMethod for NoInvariance<'_> {
            fn device_of(&self, b: &[u64]) -> u64 {
                self.0.device_of(b)
            }
            fn system(&self) -> &SystemConfig {
                self.0.system()
            }
            fn name(&self) -> String {
                "fx-no-invariance".into()
            }
        }

        let slow = NoInvariance(&fx);
        for pattern in Pattern::all(sys.num_fields()) {
            assert_eq!(
                pattern_strict_optimal(&fx, &sys, pattern),
                pattern_strict_optimal(&slow, &sys, pattern),
                "{pattern:?}"
            );
            assert_eq!(
                pattern_largest_response(&fx, &sys, pattern),
                pattern_largest_response(&slow, &sys, pattern),
                "{pattern:?}"
            );
        }
    }
}
