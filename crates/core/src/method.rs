//! The distribution-method abstraction.
//!
//! A *data distribution method* (paper §2) is a function
//! `FD : f_1 × … × f_n → Z_M` assigning each bucket to a device. FX and the
//! baselines (Disk Modulo, GDM, …) all implement [`DistributionMethod`];
//! the optimality checkers, the storage simulator, and the analysis drivers
//! are written against the trait so every method is measured by identical
//! machinery.

use crate::fx::FxDistribution;
use crate::system::SystemConfig;

/// Stack-buffer capacity for the default [`DistributionMethod::device_of_packed`]
/// unpacking path. Systems with more fields (possible only via degenerate
/// `F_i = 1` fields, since the code is capped at 63 bits) fall back to a
/// heap buffer.
const MAX_STACK_FIELDS: usize = 64;

/// A bucket-to-device assignment function `FD : f_1 × … × f_n → Z_M`.
///
/// Implementations must be pure (same bucket ⇒ same device) and cheap —
/// `device_of` sits on the innermost loop of both distribution and
/// analysis.
pub trait DistributionMethod: Send + Sync {
    /// The device (in `0..M`) storing `bucket`.
    ///
    /// `bucket` must be a valid tuple for [`Self::system`]; implementations
    /// may `debug_assert!` validity but skip checks in release builds.
    fn device_of(&self, bucket: &[u64]) -> u64;

    /// The device storing the bucket with packed `code`
    /// (see [`SystemConfig::packed_layout`]; the code equals the bucket's
    /// linear index).
    ///
    /// The default implementation unpacks into a stack buffer and defers
    /// to [`Self::device_of`]; methods whose address arithmetic works
    /// directly on the packed bits (FX, Modulo, GDM, the table-based
    /// baselines) override it to skip the tuple entirely. Must agree with
    /// `device_of` on every valid bucket — the packed-equivalence property
    /// suite enforces this for every in-tree method.
    #[inline]
    fn device_of_packed(&self, code: u64) -> u64 {
        let layout = self.system().packed_layout();
        let n = layout.num_fields();
        if n <= MAX_STACK_FIELDS {
            let mut buf = [0u64; MAX_STACK_FIELDS];
            layout.unpack_into(code, &mut buf[..n]);
            self.device_of(&buf[..n])
        } else {
            self.device_of(&layout.unpack(code))
        }
    }

    /// Computes the devices of a batch of packed codes:
    /// `out[i] = device_of_packed(codes[i])` for every `i`.
    ///
    /// The default implementation is the scalar loop; methods whose
    /// address arithmetic is branch-free (FX, GeneralFx, Modulo, GDM, the
    /// binary-CPF allocators) override it with fixed-width lane kernels
    /// that the compiler can autovectorize. Overrides must stay bit-equal
    /// to the scalar path — the batched-equivalence property suite
    /// enforces this for every in-tree method.
    ///
    /// # Panics
    ///
    /// If `codes` and `out` differ in length.
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        assert_eq!(codes.len(), out.len(), "device_of_batch buffers must match");
        pmr_rt::obs::counter_add("addr.batch_calls", 1);
        for (slot, &code) in out.iter_mut().zip(codes) {
            *slot = self.device_of_packed(code);
        }
    }

    /// Downcast hook: `Some(self)` when this method is an
    /// [`FxDistribution`], letting generic executors dispatch onto the
    /// residue-indexed fast inverse mapping without knowing the concrete
    /// type. The default is `None`; wrappers forward it.
    fn as_fx(&self) -> Option<&FxDistribution> {
        None
    }

    /// The system this method distributes.
    fn system(&self) -> &SystemConfig;

    /// Human-readable method name ("FX", "Modulo", "GDM(2,3,5,7,11,13)" …).
    fn name(&self) -> String;

    /// `true` when, for any fixed specification pattern, changing the
    /// *values* of the specified fields only permutes the per-device
    /// response histogram (so its multiset — and hence the largest response
    /// size and strict-optimality — is invariant).
    ///
    /// FX satisfies this via Lemma 1.1 (XOR by a constant permutes `Z_M`);
    /// Disk Modulo and GDM satisfy it because changing specified values
    /// adds a constant modulo `M` (a rotation). Analysis uses this to
    /// evaluate one representative query per pattern instead of all
    /// `∏ F_specified` of them; methods returning `true` wrongly will be
    /// caught by the cross-check property tests in `pmr-analysis`.
    fn histogram_shift_invariant(&self) -> bool {
        false
    }
}

/// Blanket implementation so `&M`, `Box<M>`, `Arc<M>` are methods too.
impl<M: DistributionMethod + ?Sized> DistributionMethod for &M {
    fn device_of(&self, bucket: &[u64]) -> u64 {
        (**self).device_of(bucket)
    }
    fn device_of_packed(&self, code: u64) -> u64 {
        (**self).device_of_packed(code)
    }
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        (**self).device_of_batch(codes, out)
    }
    fn as_fx(&self) -> Option<&FxDistribution> {
        (**self).as_fx()
    }
    fn system(&self) -> &SystemConfig {
        (**self).system()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn histogram_shift_invariant(&self) -> bool {
        (**self).histogram_shift_invariant()
    }
}

impl<M: DistributionMethod + ?Sized> DistributionMethod for Box<M> {
    fn device_of(&self, bucket: &[u64]) -> u64 {
        (**self).device_of(bucket)
    }
    fn device_of_packed(&self, code: u64) -> u64 {
        (**self).device_of_packed(code)
    }
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        (**self).device_of_batch(codes, out)
    }
    fn as_fx(&self) -> Option<&FxDistribution> {
        (**self).as_fx()
    }
    fn system(&self) -> &SystemConfig {
        (**self).system()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn histogram_shift_invariant(&self) -> bool {
        (**self).histogram_shift_invariant()
    }
}

impl<M: DistributionMethod + ?Sized> DistributionMethod for std::sync::Arc<M> {
    fn device_of(&self, bucket: &[u64]) -> u64 {
        (**self).device_of(bucket)
    }
    fn device_of_packed(&self, code: u64) -> u64 {
        (**self).device_of_packed(code)
    }
    fn device_of_batch(&self, codes: &[u64], out: &mut [u64]) {
        (**self).device_of_batch(codes, out)
    }
    fn as_fx(&self) -> Option<&FxDistribution> {
        (**self).as_fx()
    }
    fn system(&self) -> &SystemConfig {
        (**self).system()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn histogram_shift_invariant(&self) -> bool {
        (**self).histogram_shift_invariant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    /// A toy method for exercising the trait plumbing.
    struct FirstField(SystemConfig);

    impl DistributionMethod for FirstField {
        fn device_of(&self, bucket: &[u64]) -> u64 {
            bucket[0] % self.0.devices()
        }
        fn system(&self) -> &SystemConfig {
            &self.0
        }
        fn name(&self) -> String {
            "first-field".into()
        }
    }

    #[test]
    fn trait_objects_and_smart_pointers() {
        let sys = SystemConfig::new(&[4, 4], 2).unwrap();
        let m = FirstField(sys);
        assert_eq!(m.device_of(&[3, 0]), 1);
        let boxed: Box<dyn DistributionMethod> = Box::new(m);
        assert_eq!(boxed.device_of(&[3, 0]), 1);
        assert_eq!(boxed.name(), "first-field");
        assert!(!boxed.histogram_shift_invariant());
        assert!(boxed.as_fx().is_none());
        let by_ref: &dyn DistributionMethod = &*boxed;
        assert_eq!(by_ref.device_of(&[2, 1]), 0);
        let arc: std::sync::Arc<dyn DistributionMethod> =
            std::sync::Arc::new(FirstField(SystemConfig::new(&[4, 4], 2).unwrap()));
        assert_eq!(arc.device_of(&[1, 1]), 1);
    }

    /// The default packed path agrees with `device_of` for a method that
    /// only implements the tuple form.
    #[test]
    fn default_device_of_packed_unpacks() {
        let sys = SystemConfig::new(&[4, 2, 8], 2).unwrap();
        let m = FirstField(sys.clone());
        let mut buf = Vec::new();
        for code in sys.all_indices() {
            sys.decode_index(code, &mut buf);
            assert_eq!(m.device_of_packed(code), m.device_of(&buf));
        }
    }

    /// The default batch path is the scalar loop, including through the
    /// smart-pointer forwards, and rejects mismatched buffers.
    #[test]
    fn default_device_of_batch_is_scalar_loop() {
        let sys = SystemConfig::new(&[4, 2, 8], 2).unwrap();
        let m = FirstField(sys.clone());
        let codes: Vec<u64> = sys.all_indices().collect();
        let mut out = vec![0u64; codes.len()];
        m.device_of_batch(&codes, &mut out);
        for (&code, &dev) in codes.iter().zip(&out) {
            assert_eq!(dev, m.device_of_packed(code));
        }
        let arc: std::sync::Arc<dyn DistributionMethod> = std::sync::Arc::new(m);
        let mut forwarded = vec![0u64; codes.len()];
        arc.device_of_batch(&codes, &mut forwarded);
        assert_eq!(forwarded, out);
        let empty: [u64; 0] = [];
        let mut empty_out: [u64; 0] = [];
        arc.device_of_batch(&empty, &mut empty_out);
    }

    #[test]
    #[should_panic(expected = "device_of_batch buffers must match")]
    fn device_of_batch_rejects_length_mismatch() {
        let sys = SystemConfig::new(&[4, 4], 2).unwrap();
        let m = FirstField(sys);
        let mut out = [0u64; 2];
        m.device_of_batch(&[0, 1, 2], &mut out);
    }
}
