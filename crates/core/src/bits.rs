//! Bit-level algebra underpinning FX distribution.
//!
//! The paper's machinery rests on two facts about bitwise XOR over
//! power-of-two domains:
//!
//! * **Lemma 1.1** — for any `k` with `0 <= k < M`, `Z_M ⊕ k = Z_M`:
//!   XOR-ing every element of `{0, …, M−1}` with a constant permutes the set.
//! * **Lemma 4.1** — for `L = a·w + b` with `0 <= b < w` and `w` a power of
//!   two, `W ⊕ L = {a·w, …, (a+1)·w − 1}` where `W = {0, …, w−1}`: XOR-ing an
//!   aligned window by any constant lands in a single aligned window.
//!
//! Both are consequences of XOR acting independently on bit positions; we
//! expose them as checked helpers (used heavily in tests and in the
//! fast inverse mapping) together with the truncation map `T_M`.

use crate::error::{Error, Result};

/// Returns `true` when `x` is a power of two (`x >= 1`).
///
/// The paper assumes every field size and the device count are powers of
/// two, "which is common for hash directory files for partitioned or
/// dynamic hashing schemes".
#[inline]
pub fn is_power_of_two(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Exact base-2 logarithm of a power of two.
///
/// # Errors
///
/// Returns [`Error::NotPowerOfTwo`] when `x` is not a power of two.
#[inline]
pub fn log2_exact(x: u64) -> Result<u32> {
    if is_power_of_two(x) {
        Ok(x.trailing_zeros())
    } else {
        Err(Error::NotPowerOfTwo { value: x })
    }
}

/// The truncation function `T_M : N → Z_M` returning the rightmost
/// `log2 M` bits of its argument.
///
/// `m` must be a power of two; this is enforced by the callers that
/// construct validated configurations, so the function itself is branch-free
/// (`debug_assert!` guards misuse in dev builds).
#[inline]
pub fn t_m(x: u64, m: u64) -> u64 {
    debug_assert!(is_power_of_two(m), "T_M requires a power-of-two modulus");
    x & (m - 1)
}

/// The buddy mask pairing devices for mirrored placement: `m >> 1` (the
/// top device-id bit) for power-of-two `m ≥ 2`, `None` for `m = 1`
/// (a single device has no buddy).
///
/// By Lemma 1.1, XOR-ing every device id with a fixed non-zero constant
/// `< M` permutes `Z_M`, and XOR by a single bit is an involution with no
/// fixed points — so `d ↦ d ⊕ buddy_mask` tiles the devices into disjoint
/// pairs `{d, d ⊕ M/2}`. Mirroring each bucket onto its home device's
/// buddy therefore places the copy on a device whose *primary* bucket set
/// is disjoint from the home's (FX assigns by `T_M(J_1 ⊕ … ⊕ J_n)`, and
/// translating the device id translates the preimage), giving failover
/// reads a deterministic second location that never collides with the
/// primary.
///
/// # Examples
///
/// ```
/// use pmr_core::bits::buddy_mask;
///
/// assert_eq!(buddy_mask(32), Some(16)); // Table 7: buddy of d is d ⊕ 16
/// assert_eq!(buddy_mask(2), Some(1));
/// assert_eq!(buddy_mask(1), None);
/// assert_eq!(buddy_mask(12), None); // not a power of two
/// ```
#[inline]
pub fn buddy_mask(m: u64) -> Option<u64> {
    if is_power_of_two(m) && m >= 2 {
        Some(m >> 1)
    } else {
        None
    }
}

/// The mirror buddy of `device` on an `m`-device system: `d ⊕ M/2`
/// ([`buddy_mask`]), or `None` when `m` has no buddy pairing (`m = 1`, or
/// not a power of two).
///
/// # Examples
///
/// ```
/// use pmr_core::bits::buddy_of;
///
/// assert_eq!(buddy_of(3, 32), Some(19)); // Table 7: 3 ⊕ 16
/// assert_eq!(buddy_of(19, 32), Some(3)); // involution
/// assert_eq!(buddy_of(0, 2), Some(1));
/// assert_eq!(buddy_of(0, 1), None);
/// ```
#[inline]
pub fn buddy_of(device: u64, m: u64) -> Option<u64> {
    buddy_mask(m).map(|mask| device ^ mask)
}

/// `ceil(a / b)` for positive `b`; the bound in the strict-optimality
/// definition (`ceil(|R(q)| / M)`).
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Materialises `Z_M ⊕ k` (Lemma 1.1). Intended for tests and exposition —
/// hot paths use the lemma implicitly instead of allocating.
pub fn zm_xor_k(m: u64, k: u64) -> Vec<u64> {
    (0..m).map(|z| z ^ k).collect()
}

/// Materialises `W ⊕ L` for the aligned window `W = {0, …, w−1}`
/// (Lemma 4.1). Intended for tests and exposition.
pub fn window_xor(w: u64, l: u64) -> Vec<u64> {
    (0..w).map(|x| x ^ l).collect()
}

/// The aligned window `[a·w, (a+1)·w)` that `W ⊕ L` lands in according to
/// Lemma 4.1, returned as `(start, end_exclusive)`.
#[inline]
pub fn window_of(w: u64, l: u64) -> (u64, u64) {
    debug_assert!(is_power_of_two(w));
    let start = l & !(w - 1);
    (start, start + w)
}

/// XOR of two sets of integers as defined in the paper:
/// `X ⊕ Y = { x ⊕ y | x ∈ X, y ∈ Y }` (duplicates collapsed, sorted).
///
/// This mirrors the `[+]` operator on sets; it exists for tests and for
/// reproducing the worked examples (Examples 1–8).
pub fn xor_sets(xs: &[u64], ys: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = xs
        .iter()
        .flat_map(|&x| ys.iter().map(move |&y| x ^ y))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// XOR of a scalar with a set: `k ⊕ Y = { k ⊕ y | y ∈ Y }` (sorted, deduped).
pub fn xor_scalar_set(k: u64, ys: &[u64]) -> Vec<u64> {
    xor_sets(&[k], ys)
}

/// Folds `⊕` over an iterator of values (`[+]_{i=1}^{n} Y_i` for scalars).
#[inline]
pub fn xor_fold<I: IntoIterator<Item = u64>>(iter: I) -> u64 {
    iter.into_iter().fold(0, |acc, v| acc ^ v)
}

/// The packed bucket representation: per-field shift/mask pairs mapping a
/// bucket tuple `<J_1, …, J_n>` to a single `u64` code.
///
/// Because every field size is a power of two (`F_i = 2^{b_i}`), a bucket
/// is losslessly the bit concatenation of its coordinates: field 0
/// occupies the lowest `b_0` bits, field 1 the next `b_1`, and so on, for
/// `Σ b_i ≤ 63` bits in total. The packed code **is** the dense linear
/// index of [`crate::SystemConfig::linear_index`] — the layout merely
/// makes the per-field arithmetic (`shift`, `mask`) first-class so hot
/// paths can extract or rewrite a coordinate with two instructions and no
/// allocation.
///
/// # Examples
///
/// ```
/// use pmr_core::bits::PackedLayout;
///
/// let layout = PackedLayout::new(&[4, 2, 8]).unwrap();
/// let code = layout.pack(&[3, 1, 5]);
/// assert_eq!(code, 3 | (1 << 2) | (5 << 3));
/// assert_eq!(layout.field(code, 2), 5);
/// assert_eq!(layout.unpack(code), vec![3, 1, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedLayout {
    /// Bit offset of each field within the code (field 0 lowest).
    shifts: Vec<u32>,
    /// In-field mask `F_i − 1` of each field (pre-shift).
    masks: Vec<u64>,
    /// `Σ log2 F_i`.
    total_bits: u32,
}

impl PackedLayout {
    /// Derives the layout from the field sizes.
    ///
    /// # Errors
    ///
    /// * [`Error::NotPowerOfTwo`] when any size is not a power of two.
    /// * [`Error::Overflow`] when the packed code would exceed 63 bits.
    pub fn new(field_sizes: &[u64]) -> Result<Self> {
        let mut shifts = Vec::with_capacity(field_sizes.len());
        let mut masks = Vec::with_capacity(field_sizes.len());
        let mut offset = 0u32;
        for &f in field_sizes {
            let bits = log2_exact(f)?;
            shifts.push(offset);
            masks.push(f - 1);
            offset = offset.checked_add(bits).ok_or(Error::Overflow)?;
        }
        if offset > 63 {
            return Err(Error::Overflow);
        }
        Ok(PackedLayout {
            shifts,
            masks,
            total_bits: offset,
        })
    }

    /// Number of fields.
    #[inline]
    pub fn num_fields(&self) -> usize {
        self.shifts.len()
    }

    /// Bit offset of field `i` within the code.
    #[inline]
    pub fn shift(&self, field: usize) -> u32 {
        self.shifts[field]
    }

    /// In-field mask `F_i − 1` (apply after shifting right).
    #[inline]
    pub fn mask(&self, field: usize) -> u64 {
        self.masks[field]
    }

    /// Total width of the code in bits (`Σ log2 F_i`).
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Mask covering every valid code bit: `∏ F_i − 1`.
    #[inline]
    pub fn code_mask(&self) -> u64 {
        (1u64 << self.total_bits) - 1
    }

    /// Packs a bucket tuple into its code. Values must be in range
    /// (`debug_assert!`ed).
    #[inline]
    pub fn pack(&self, bucket: &[u64]) -> u64 {
        debug_assert_eq!(bucket.len(), self.num_fields());
        let mut code = 0u64;
        for ((&v, &shift), &mask) in bucket.iter().zip(&self.shifts).zip(&self.masks) {
            debug_assert!(v <= mask, "value {v} exceeds field mask {mask}");
            code |= v << shift;
        }
        code
    }

    /// Extracts field `i` from a code.
    #[inline]
    pub fn field(&self, code: u64, field: usize) -> u64 {
        (code >> self.shifts[field]) & self.masks[field]
    }

    /// Returns `code` with field `i` replaced by `value`.
    #[inline]
    pub fn with_field(&self, code: u64, field: usize, value: u64) -> u64 {
        debug_assert!(value <= self.masks[field]);
        (code & !(self.masks[field] << self.shifts[field])) | (value << self.shifts[field])
    }

    /// Unpacks a code into the supplied buffer (must be `num_fields` long).
    #[inline]
    pub fn unpack_into(&self, code: u64, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.num_fields());
        for ((slot, &shift), &mask) in out.iter_mut().zip(&self.shifts).zip(&self.masks) {
            *slot = (code >> shift) & mask;
        }
    }

    /// Unpacks a code into a freshly allocated bucket tuple.
    pub fn unpack(&self, code: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.num_fields()];
        self.unpack_into(code, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1 << 20));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(6));
        assert!(!is_power_of_two(u64::MAX));
    }

    #[test]
    fn log2_exact_values() {
        assert_eq!(log2_exact(1).unwrap(), 0);
        assert_eq!(log2_exact(2).unwrap(), 1);
        assert_eq!(log2_exact(1024).unwrap(), 10);
        assert!(log2_exact(0).is_err());
        assert!(log2_exact(12).is_err());
    }

    #[test]
    fn t_m_truncates_to_low_bits() {
        assert_eq!(t_m(0b1011, 4), 0b11);
        assert_eq!(t_m(0b1011, 8), 0b011);
        assert_eq!(t_m(5, 1), 0);
        assert_eq!(t_m(255, 16), 15);
    }

    /// `T_M(A ⊕ B) = T_M(T_M(A) ⊕ T_M(B))` — the identity used in the proof
    /// of Theorem 1 ("bits whose positions are higher than or equal to
    /// log2 M do not affect the final result").
    #[test]
    fn t_m_distributes_over_xor() {
        for m in [1u64, 2, 4, 32, 1024] {
            for a in 0..64u64 {
                for b in 0..64u64 {
                    assert_eq!(t_m(a ^ b, m), t_m(t_m(a, m) ^ t_m(b, m), m));
                }
            }
        }
    }

    #[test]
    fn ceil_div_matches_definition() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(4, 4), 1);
        assert_eq!(ceil_div(5, 4), 2);
        assert_eq!(ceil_div(64, 32), 2);
    }

    /// Example 2 from the paper: `Z_8 ⊕ 3 = {3,2,1,0,7,6,5,4} = Z_8`.
    #[test]
    fn lemma_1_1_example_2() {
        let permuted = zm_xor_k(8, 3);
        assert_eq!(permuted, vec![3, 2, 1, 0, 7, 6, 5, 4]);
        let mut sorted = permuted;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    /// Lemma 1.1 for every `k < M`: the XOR translate of `Z_M` is `Z_M`.
    #[test]
    fn lemma_1_1_exhaustive_small() {
        for m in [1u64, 2, 4, 8, 16, 64] {
            for k in 0..m {
                let mut translated = zm_xor_k(m, k);
                translated.sort_unstable();
                assert_eq!(translated, (0..m).collect::<Vec<_>>(), "m={m} k={k}");
            }
        }
    }

    /// Lemma 4.1: `W ⊕ L` is exactly the aligned window containing `L`.
    #[test]
    fn lemma_4_1_exhaustive_small() {
        for w in [1u64, 2, 4, 8, 16] {
            for l in 0..128u64 {
                let mut got = window_xor(w, l);
                got.sort_unstable();
                let (start, end) = window_of(w, l);
                assert_eq!(got, (start..end).collect::<Vec<_>>(), "w={w} l={l}");
                assert!(start <= l && l < end);
                assert_eq!(start % w, 0, "window must be aligned");
            }
        }
    }

    /// The worked definition example: `X2 = 2`, `Y2 = {0,1,2,3}` gives
    /// `X2 ⊕ Y2 = {0,1,2,3}`.
    #[test]
    fn xor_scalar_set_example() {
        assert_eq!(xor_scalar_set(2, &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
        assert_eq!(xor_scalar_set(2, &[3]), vec![1]);
    }

    #[test]
    fn xor_sets_cross_product() {
        // {0,4} ⊕ {0,1} = {0,1,4,5}
        assert_eq!(xor_sets(&[0, 4], &[0, 1]), vec![0, 1, 4, 5]);
        // Self-XOR of a group is the group.
        assert_eq!(xor_sets(&[0, 1, 2, 3], &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn packed_layout_round_trips() {
        let layout = PackedLayout::new(&[4, 2, 8, 1]).unwrap();
        assert_eq!(layout.num_fields(), 4);
        assert_eq!(layout.total_bits(), 2 + 1 + 3);
        assert_eq!(layout.code_mask(), (1 << 6) - 1);
        let mut buf = [0u64; 4];
        for a in 0..4 {
            for b in 0..2 {
                for c in 0..8 {
                    let bucket = [a, b, c, 0];
                    let code = layout.pack(&bucket);
                    assert!(code <= layout.code_mask());
                    layout.unpack_into(code, &mut buf);
                    assert_eq!(buf, bucket);
                    assert_eq!(layout.unpack(code), bucket);
                    for (i, &coord) in bucket.iter().enumerate() {
                        assert_eq!(layout.field(code, i), coord);
                    }
                }
            }
        }
    }

    #[test]
    fn packed_layout_with_field_rewrites_one_coordinate() {
        let layout = PackedLayout::new(&[8, 4, 16]).unwrap();
        let code = layout.pack(&[5, 2, 9]);
        let rewritten = layout.with_field(code, 1, 3);
        assert_eq!(layout.unpack(rewritten), vec![5, 3, 9]);
        // All other fields untouched, including high bits.
        assert_eq!(layout.field(rewritten, 0), 5);
        assert_eq!(layout.field(rewritten, 2), 9);
    }

    #[test]
    fn packed_layout_rejects_bad_sizes() {
        assert!(matches!(
            PackedLayout::new(&[3]).unwrap_err(),
            Error::NotPowerOfTwo { value: 3 }
        ));
        assert!(matches!(
            PackedLayout::new(&[1 << 40, 1 << 40]).unwrap_err(),
            Error::Overflow
        ));
    }

    /// Buddying is an involution with no fixed points, tiling `Z_M` into
    /// disjoint pairs — the property failover placement relies on.
    #[test]
    fn buddy_mask_pairs_devices() {
        for m in [2u64, 4, 8, 16, 32, 64] {
            let mask = buddy_mask(m).unwrap();
            assert_eq!(mask, m / 2);
            for d in 0..m {
                let buddy = d ^ mask;
                assert!(buddy < m, "buddy stays in Z_M");
                assert_ne!(buddy, d, "no device is its own buddy");
                assert_eq!(buddy ^ mask, d, "buddying is an involution");
            }
        }
        assert_eq!(buddy_mask(1), None);
        assert_eq!(buddy_mask(0), None);
        assert_eq!(buddy_mask(6), None);
    }

    /// `buddy_of` pins the Lemma 1.1 XOR pairing directly for M = 2, 4,
    /// 32: every device's buddy is `d ⊕ M/2`, buddying is an involution
    /// (`buddy_of(buddy_of(d)) == d`) with no fixed points, and the pairs
    /// tile `Z_M` — each device appears in exactly one pair.
    #[test]
    fn buddy_of_pins_lemma_1_1_pairing() {
        for m in [2u64, 4, 32] {
            let mut paired = vec![0u32; m as usize];
            for d in 0..m {
                let buddy = buddy_of(d, m).unwrap();
                assert_eq!(buddy, d ^ (m / 2), "m={m} d={d}");
                assert_ne!(buddy, d, "m={m}: no device is its own buddy");
                assert_eq!(
                    buddy_of(buddy, m),
                    Some(d),
                    "m={m}: buddy_of(buddy_of({d})) must return {d}"
                );
                paired[buddy as usize] += 1;
            }
            assert!(
                paired.iter().all(|&c| c == 1),
                "m={m}: buddies must tile Z_M into disjoint pairs"
            );
        }
        // Explicit Table 7 spot checks (M = 32): the top bit flips.
        assert_eq!(buddy_of(0, 32), Some(16));
        assert_eq!(buddy_of(5, 32), Some(21));
        assert_eq!(buddy_of(31, 32), Some(15));
        // No pairing exists for a single device or a non-power-of-two M.
        assert_eq!(buddy_of(0, 1), None);
        assert_eq!(buddy_of(2, 6), None);
    }

    #[test]
    fn xor_fold_basics() {
        assert_eq!(xor_fold([]), 0);
        assert_eq!(xor_fold([5]), 5);
        assert_eq!(xor_fold([1, 2, 3]), 0);
        assert_eq!(xor_fold([0b1010, 0b0110]), 0b1100);
    }
}
