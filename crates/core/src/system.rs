//! System configuration: the "file system" of the paper.
//!
//! A *file system* in the paper's sense is the cartesian bucket space
//! `f_1 × f_2 × … × f_n` (with `f_i = {0, …, F_i − 1}` and every `F_i` a
//! power of two) together with the number of parallel devices `M` (also a
//! power of two). [`SystemConfig`] validates and carries exactly that.

use crate::bits::{is_power_of_two, log2_exact, PackedLayout};
use crate::error::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// A validated bucket space plus device count.
///
/// Cloning is cheap (`Arc` internals) so configurations can be freely shared
/// between distribution methods, executors, and analysis drivers.
///
/// # Examples
///
/// ```
/// use pmr_core::SystemConfig;
///
/// // The file system of the paper's Example 1: F = (2, 8), M = 4.
/// let sys = SystemConfig::new(&[2, 8], 4).unwrap();
/// assert_eq!(sys.num_fields(), 2);
/// assert_eq!(sys.total_buckets(), 16);
/// assert_eq!(sys.devices(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    inner: Arc<Inner>,
}

#[derive(PartialEq, Eq, Hash)]
struct Inner {
    /// `F_i` for each field, all powers of two.
    field_sizes: Vec<u64>,
    /// `log2 F_i` for each field.
    field_bits: Vec<u32>,
    /// Bit offset of field `i` within the linear bucket index
    /// (field 0 occupies the lowest bits).
    bit_offsets: Vec<u32>,
    /// Number of parallel devices `M`.
    devices: u64,
    /// `log2 M`.
    device_bits: u32,
    /// `∏ F_i`.
    total_buckets: u64,
    /// The packed bucket representation (shifts/masks per field). The
    /// packed code of a bucket equals its linear index.
    packed: PackedLayout,
}

impl SystemConfig {
    /// Builds a configuration, validating every invariant the paper assumes.
    ///
    /// # Errors
    ///
    /// * [`Error::NoFields`] when `field_sizes` is empty.
    /// * [`Error::NotPowerOfTwo`] when any `F_i` or `M` is not a power of
    ///   two.
    /// * [`Error::Overflow`] when `∏ F_i` does not fit in `u64`.
    pub fn new(field_sizes: &[u64], devices: u64) -> Result<Self> {
        if field_sizes.is_empty() {
            return Err(Error::NoFields);
        }
        let device_bits = log2_exact(devices)?;
        let mut field_bits = Vec::with_capacity(field_sizes.len());
        let mut bit_offsets = Vec::with_capacity(field_sizes.len());
        let mut offset = 0u32;
        let mut total: u64 = 1;
        for &f in field_sizes {
            let bits = log2_exact(f)?;
            field_bits.push(bits);
            bit_offsets.push(offset);
            offset = offset.checked_add(bits).ok_or(Error::Overflow)?;
            total = total.checked_mul(f).ok_or(Error::Overflow)?;
        }
        if offset > 63 {
            return Err(Error::Overflow);
        }
        let packed = PackedLayout::new(field_sizes)?;
        Ok(SystemConfig {
            inner: Arc::new(Inner {
                field_sizes: field_sizes.to_vec(),
                field_bits,
                bit_offsets,
                devices,
                device_bits,
                total_buckets: total,
                packed,
            }),
        })
    }

    /// Number of fields `n`.
    #[inline]
    pub fn num_fields(&self) -> usize {
        self.inner.field_sizes.len()
    }

    /// Field size `F_i`.
    ///
    /// # Panics
    ///
    /// Panics when `field >= num_fields()`; use [`SystemConfig::try_field_size`]
    /// for a checked variant.
    #[inline]
    pub fn field_size(&self, field: usize) -> u64 {
        self.inner.field_sizes[field]
    }

    /// Checked field-size accessor.
    pub fn try_field_size(&self, field: usize) -> Result<u64> {
        self.inner
            .field_sizes
            .get(field)
            .copied()
            .ok_or(Error::FieldOutOfRange {
                field,
                num_fields: self.num_fields(),
            })
    }

    /// All field sizes.
    #[inline]
    pub fn field_sizes(&self) -> &[u64] {
        &self.inner.field_sizes
    }

    /// `log2 F_i`.
    #[inline]
    pub fn field_bits(&self, field: usize) -> u32 {
        self.inner.field_bits[field]
    }

    /// Device count `M`.
    #[inline]
    pub fn devices(&self) -> u64 {
        self.inner.devices
    }

    /// `log2 M`.
    #[inline]
    pub fn device_bits(&self) -> u32 {
        self.inner.device_bits
    }

    /// Total number of buckets `∏ F_i`.
    #[inline]
    pub fn total_buckets(&self) -> u64 {
        self.inner.total_buckets
    }

    /// `true` when field `i` is *small*, i.e. `F_i < M`. Small fields are
    /// the ones needing non-identity transformations.
    #[inline]
    pub fn is_small_field(&self, field: usize) -> bool {
        self.inner.field_sizes[field] < self.inner.devices
    }

    /// Indices of the small fields (`F_i < M`), in field order. `L` in the
    /// paper's Section 4.2 summary is the length of this list.
    pub fn small_fields(&self) -> Vec<usize> {
        (0..self.num_fields())
            .filter(|&i| self.is_small_field(i))
            .collect()
    }

    /// Validates a bucket tuple against the space, checking arity and
    /// per-field range.
    pub fn validate_bucket(&self, bucket: &[u64]) -> Result<()> {
        if bucket.len() != self.num_fields() {
            return Err(Error::ArityMismatch {
                expected: self.num_fields(),
                got: bucket.len(),
            });
        }
        for (i, (&v, &f)) in bucket.iter().zip(self.field_sizes()).enumerate() {
            if v >= f {
                return Err(Error::ValueOutOfRange {
                    field: i,
                    value: v,
                    field_size: f,
                });
            }
        }
        Ok(())
    }

    /// The packed bucket representation: per-field shift/mask pairs over
    /// the dense linear index. The packed code of a bucket **is** its
    /// linear index, so device stores keyed by linear index need no
    /// translation to work with packed codes.
    #[inline]
    pub fn packed_layout(&self) -> &PackedLayout {
        &self.inner.packed
    }

    /// Linearises a bucket tuple into a dense index in `[0, total_buckets)`.
    ///
    /// Because every `F_i` is a power of two the linear index is a plain bit
    /// concatenation: field 0 occupies the lowest `log2 F_0` bits, field 1
    /// the next `log2 F_1` bits, and so on — i.e. the index is exactly the
    /// [`PackedLayout::pack`] code.
    #[inline]
    pub fn linear_index(&self, bucket: &[u64]) -> u64 {
        debug_assert_eq!(bucket.len(), self.num_fields());
        let inner = &*self.inner;
        bucket
            .iter()
            .zip(&inner.bit_offsets)
            .fold(0u64, |acc, (&v, &off)| acc | (v << off))
    }

    /// Inverse of [`SystemConfig::linear_index`]: decodes a dense index into
    /// the supplied coordinate buffer (resized to `num_fields`).
    pub fn decode_index(&self, index: u64, out: &mut Vec<u64>) {
        let inner = &*self.inner;
        out.clear();
        out.extend(
            inner
                .bit_offsets
                .iter()
                .zip(&inner.field_sizes)
                .map(|(&off, &f)| (index >> off) & (f - 1)),
        );
    }

    /// Decodes a dense index into a freshly allocated bucket tuple.
    pub fn bucket_of_index(&self, index: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.num_fields());
        self.decode_index(index, &mut out);
        out
    }

    /// Iterates over every bucket in the space in linear-index order.
    ///
    /// Each item is the dense index; decode with
    /// [`SystemConfig::decode_index`] when coordinates are needed. Intended
    /// for exhaustive analysis on small systems — the iterator is `∏ F_i`
    /// long.
    pub fn all_indices(&self) -> impl Iterator<Item = u64> {
        0..self.inner.total_buckets
    }

    /// `true` when `m` divides the field size — for powers of two this is
    /// `F_i >= M`, the condition under which a field never hurts optimality
    /// (Theorem 2).
    #[inline]
    pub fn field_covers_devices(&self, field: usize) -> bool {
        self.inner.field_sizes[field] >= self.inner.devices
    }

    /// The buddy mask for mirrored placement: `M / 2` when `M ≥ 2`, `None`
    /// for a single device. See [`crate::bits::buddy_mask`] for why XOR by
    /// this mask tiles `Z_M` into disjoint device pairs.
    #[inline]
    pub fn buddy_mask(&self) -> Option<u64> {
        crate::bits::buddy_mask(self.inner.devices)
    }

    /// The buddy of `device` (`device ⊕ M/2`), or `None` when `M = 1`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `device < M`.
    #[inline]
    pub fn buddy_of(&self, device: u64) -> Option<u64> {
        debug_assert!(device < self.inner.devices);
        self.buddy_mask().map(|mask| device ^ mask)
    }
}

impl fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemConfig")
            .field("field_sizes", &self.inner.field_sizes)
            .field("devices", &self.inner.devices)
            .finish()
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F = (")?;
        for (i, s) in self.inner.field_sizes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "), M = {}", self.inner.devices)
    }
}

/// Convenience: `true` when `x >= 1` and a power of two. Re-exported here
/// because configuration call-sites often want to pre-validate user input.
pub fn valid_size(x: u64) -> bool {
    is_power_of_two(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_configs() {
        assert_eq!(SystemConfig::new(&[], 4).unwrap_err(), Error::NoFields);
        assert!(matches!(
            SystemConfig::new(&[3, 8], 4).unwrap_err(),
            Error::NotPowerOfTwo { value: 3 }
        ));
        assert!(matches!(
            SystemConfig::new(&[2, 8], 5).unwrap_err(),
            Error::NotPowerOfTwo { value: 5 }
        ));
        // 2^40 * 2^40 overflows the 63-bit linear index budget.
        assert!(matches!(
            SystemConfig::new(&[1 << 40, 1 << 40], 4).unwrap_err(),
            Error::Overflow
        ));
    }

    #[test]
    fn example_1_configuration() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        assert_eq!(sys.num_fields(), 2);
        assert_eq!(sys.field_size(0), 2);
        assert_eq!(sys.field_size(1), 8);
        assert_eq!(sys.devices(), 4);
        assert_eq!(sys.device_bits(), 2);
        assert_eq!(sys.total_buckets(), 16);
        assert!(sys.is_small_field(0));
        assert!(!sys.is_small_field(1));
        assert_eq!(sys.small_fields(), vec![0]);
        assert!(sys.field_covers_devices(1));
    }

    #[test]
    fn linear_index_round_trips() {
        let sys = SystemConfig::new(&[4, 2, 8], 16).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut buf = Vec::new();
        for a in 0..4 {
            for b in 0..2 {
                for c in 0..8 {
                    let bucket = [a, b, c];
                    let idx = sys.linear_index(&bucket);
                    assert!(idx < sys.total_buckets());
                    assert!(seen.insert(idx), "index collision at {bucket:?}");
                    sys.decode_index(idx, &mut buf);
                    assert_eq!(buf.as_slice(), &bucket);
                    assert_eq!(sys.bucket_of_index(idx), bucket);
                }
            }
        }
        assert_eq!(seen.len() as u64, sys.total_buckets());
    }

    /// The packed code equals the linear index for every bucket.
    #[test]
    fn packed_layout_is_the_linear_index() {
        let sys = SystemConfig::new(&[4, 2, 8], 16).unwrap();
        let layout = sys.packed_layout();
        let mut buf = Vec::new();
        for idx in sys.all_indices() {
            sys.decode_index(idx, &mut buf);
            assert_eq!(layout.pack(&buf), idx);
            assert_eq!(layout.pack(&buf), sys.linear_index(&buf));
            assert_eq!(layout.unpack(idx), buf);
        }
        assert_eq!(layout.total_bits(), 2 + 1 + 3);
    }

    #[test]
    fn validate_bucket_errors() {
        let sys = SystemConfig::new(&[4, 8], 4).unwrap();
        assert!(sys.validate_bucket(&[3, 7]).is_ok());
        assert!(matches!(
            sys.validate_bucket(&[4, 0]).unwrap_err(),
            Error::ValueOutOfRange { field: 0, .. }
        ));
        assert!(matches!(
            sys.validate_bucket(&[0, 0, 0]).unwrap_err(),
            Error::ArityMismatch {
                expected: 2,
                got: 3
            }
        ));
    }

    #[test]
    fn display_formats() {
        let sys = SystemConfig::new(&[2, 8], 4).unwrap();
        assert_eq!(sys.to_string(), "F = (2, 8), M = 4");
    }

    #[test]
    fn single_value_fields_are_legal() {
        // F_i = 1 is a degenerate but valid power of two.
        let sys = SystemConfig::new(&[1, 8], 4).unwrap();
        assert_eq!(sys.total_buckets(), 8);
        assert!(sys.is_small_field(0));
    }

    #[test]
    fn all_indices_covers_space() {
        let sys = SystemConfig::new(&[2, 4], 2).unwrap();
        assert_eq!(sys.all_indices().count() as u64, sys.total_buckets());
    }

    #[test]
    fn buddy_pairs_partition_devices() {
        let sys = SystemConfig::new(&[8; 6], 32).unwrap(); // Table 7
        assert_eq!(sys.buddy_mask(), Some(16));
        for d in 0..32 {
            let buddy = sys.buddy_of(d).unwrap();
            assert_eq!(sys.buddy_of(buddy), Some(d));
            assert_ne!(buddy, d);
        }
        let single = SystemConfig::new(&[2, 8], 1).unwrap();
        assert_eq!(single.buddy_mask(), None);
        assert_eq!(single.buddy_of(0), None);
    }

    #[test]
    fn try_field_size_checks_range() {
        let sys = SystemConfig::new(&[2, 4], 2).unwrap();
        assert_eq!(sys.try_field_size(1).unwrap(), 4);
        assert!(matches!(
            sys.try_field_size(2).unwrap_err(),
            Error::FieldOutOfRange {
                field: 2,
                num_fields: 2
            }
        ));
    }
}
