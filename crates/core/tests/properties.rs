//! Property-based tests for the core FX machinery.
//!
//! These complement the unit tests by sampling random systems,
//! assignments, and queries, and asserting the paper's lemmas and theorems
//! as universally-quantified properties.

use pmr_core::assign::{Assignment, AssignmentStrategy};
use pmr_core::bits;
use pmr_core::conditions::fx_pattern_reason;
use pmr_core::inverse::{scan_device_buckets, FxInverse};
use pmr_core::method::DistributionMethod;
use pmr_core::optimality::{
    is_k_optimal, pattern_strict_optimal, response_histogram,
};
use pmr_core::query::{PartialMatchQuery, Pattern};
use pmr_core::system::SystemConfig;
use pmr_core::transform::{Transform, TransformKind};
use pmr_core::{FxDistribution, GeneralFxDistribution};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Random small system: 1–4 fields, sizes 2^0..2^4, devices 2^1..2^5,
/// bounded so exhaustive checks stay fast.
fn arb_system() -> impl Strategy<Value = SystemConfig> {
    (
        proptest::collection::vec(0u32..=4, 1..=4),
        1u32..=5,
    )
        .prop_map(|(field_bits, m_bits)| {
            let sizes: Vec<u64> = field_bits.iter().map(|&b| 1u64 << b).collect();
            SystemConfig::new(&sizes, 1 << m_bits).expect("powers of two are valid")
        })
}

fn arb_strategy() -> impl Strategy<Value = AssignmentStrategy> {
    prop_oneof![
        Just(AssignmentStrategy::Basic),
        Just(AssignmentStrategy::CycleIu1),
        Just(AssignmentStrategy::CycleIu2),
        Just(AssignmentStrategy::TheoremNine),
    ]
}

/// Random kind legal for a (field size, devices) pair.
fn arb_kind_for(small: bool) -> impl Strategy<Value = TransformKind> {
    if small {
        prop_oneof![
            Just(TransformKind::Identity),
            Just(TransformKind::U),
            Just(TransformKind::Iu1),
            Just(TransformKind::Iu2),
        ]
        .boxed()
    } else {
        Just(TransformKind::Identity).boxed()
    }
}

fn arb_fx() -> impl Strategy<Value = FxDistribution> {
    arb_system().prop_flat_map(|sys| {
        let kinds: Vec<_> = (0..sys.num_fields())
            .map(|i| arb_kind_for(sys.is_small_field(i)))
            .collect();
        (Just(sys), kinds).prop_map(|(sys, kinds)| {
            let a = Assignment::from_kinds(&sys, &kinds).expect("kinds respect smallness");
            FxDistribution::with_assignment(a)
        })
    })
}

/// Random valid query for a system.
fn arb_query(sys: &SystemConfig) -> impl Strategy<Value = PartialMatchQuery> {
    let per_field: Vec<_> = (0..sys.num_fields())
        .map(|i| {
            let f = sys.field_size(i);
            prop_oneof![Just(None), (0..f).prop_map(Some)]
        })
        .collect();
    let sys = sys.clone();
    per_field.prop_map(move |values| {
        PartialMatchQuery::new(&sys, &values).expect("values drawn in range")
    })
}

proptest! {
    /// Lemma 1.1 as a property over wide ranges.
    #[test]
    fn lemma_1_1(m_bits in 0u32..16, k in 0u64..65536) {
        let m = 1u64 << m_bits;
        let k = k & (m - 1);
        let mut translated = bits::zm_xor_k(m, k);
        translated.sort_unstable();
        prop_assert!(translated.iter().copied().eq(0..m));
    }

    /// Lemma 4.1 as a property.
    #[test]
    fn lemma_4_1(w_bits in 0u32..12, l in 0u64..(1 << 20)) {
        let w = 1u64 << w_bits;
        let mut got = bits::window_xor(w, l);
        got.sort_unstable();
        let (start, end) = bits::window_of(w, l);
        prop_assert!(got.iter().copied().eq(start..end));
        prop_assert_eq!(start % w, 0);
        prop_assert!((start..end).contains(&l));
    }

    /// Every transform is injective and lands in Z_M (Lemmas 5.1 / 7.1).
    #[test]
    fn transforms_injective(
        m_bits in 1u32..20,
        f_bits_delta in 1u32..20,
        kind_idx in 0usize..4,
    ) {
        let m = 1u64 << m_bits;
        let f_bits = m_bits.saturating_sub(f_bits_delta.min(m_bits));
        let f = 1u64 << f_bits;
        prop_assume!(f < m || kind_idx == 0);
        let kind = TransformKind::ALL[kind_idx];
        let t = Transform::new(kind, f, m).unwrap();
        let mut image: Vec<u64> = (0..f.min(4096)).map(|l| t.apply(l)).collect();
        prop_assert!(image.iter().all(|&v| v < m));
        image.sort_unstable();
        image.dedup();
        prop_assert_eq!(image.len() as u64, f.min(4096));
    }

    /// Transform inversion round-trips on random values.
    #[test]
    fn transform_invert_roundtrip(
        m_bits in 1u32..20,
        f_bits in 0u32..19,
        kind_idx in 0usize..4,
        l in 0u64..(1 << 19),
    ) {
        prop_assume!(f_bits < m_bits);
        let m = 1u64 << m_bits;
        let f = 1u64 << f_bits;
        let l = l & (f - 1);
        let kind = TransformKind::ALL[kind_idx];
        let t = Transform::new(kind, f, m).unwrap();
        prop_assert_eq!(t.invert(t.apply(l)), Some(l));
    }

    /// Theorem 1: every FX distribution (any assignment) is 0- and
    /// 1-optimal.
    #[test]
    fn theorem_1_any_assignment(fx in arb_fx()) {
        let sys = fx.system().clone();
        prop_assert!(is_k_optimal(&fx, &sys, 0));
        prop_assert!(is_k_optimal(&fx, &sys, 1));
    }

    /// Theorem 2: any pattern containing a large unspecified field is
    /// strict optimal, for any assignment.
    #[test]
    fn theorem_2_any_assignment(fx in arb_fx()) {
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let unspecified = pattern.unspecified_fields(sys.num_fields());
            if unspecified.len() >= 2
                && unspecified.iter().any(|&i| sys.field_covers_devices(i))
            {
                prop_assert!(
                    pattern_strict_optimal(&fx, &sys, pattern),
                    "{} pattern {:?}", sys, pattern
                );
            }
        }
    }

    /// Soundness of the §4.2 sufficient conditions on random assignments:
    /// certified ⇒ measured optimal.
    #[test]
    fn sufficient_conditions_sound(fx in arb_fx()) {
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let reason = fx_pattern_reason(fx.assignment(), pattern);
            if reason.is_guaranteed() {
                prop_assert!(
                    pattern_strict_optimal(&fx, &sys, pattern),
                    "{} [{}] pattern {:?} reason {:?}",
                    sys, fx.assignment().describe(), pattern, reason
                );
            }
        }
    }

    /// Theorem 9: the auto strategy is perfect optimal whenever at most
    /// three fields are small.
    #[test]
    fn theorem_9_auto_perfect(sys in arb_system()) {
        prop_assume!(sys.small_fields().len() <= 3);
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        prop_assert!(
            pmr_core::optimality::is_perfect_optimal(&fx, &sys),
            "{} [{}]", sys, fx.assignment().describe()
        );
    }

    /// Histogram shift-invariance holds for FX: the sorted response
    /// histogram is identical across all queries of a pattern.
    #[test]
    fn fx_histograms_shift_invariant(fx in arb_fx()) {
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let reference = {
                let q = PartialMatchQuery::zero_representative(&sys, pattern);
                let mut h = response_histogram(&fx, &sys, &q);
                h.sort_unstable();
                h
            };
            let ok = pmr_core::optimality::for_each_query(&sys, pattern, |q| {
                let mut h = response_histogram(&fx, &sys, q);
                h.sort_unstable();
                h == reference
            });
            prop_assert!(ok, "{} pattern {:?}", sys, pattern);
        }
    }

    /// The FX fast inverse mapping agrees with the generic scan for random
    /// systems, strategies, and queries.
    #[test]
    fn inverse_matches_scan(
        (fx, query) in arb_system().prop_flat_map(|sys| {
            let q = arb_query(&sys);
            (arb_strategy(), Just(sys), q)
        }).prop_map(|(strategy, sys, q)| {
            (FxDistribution::with_strategy(sys, strategy).unwrap(), q)
        })
    ) {
        let sys = fx.system().clone();
        let inv = FxInverse::new(&fx, &query);
        let mut total = 0u64;
        for device in 0..sys.devices() {
            let mut fast = inv.buckets_on(device);
            let mut slow = scan_device_buckets(&fx, &sys, &query, device);
            fast.sort();
            slow.sort();
            prop_assert_eq!(&fast, &slow, "{} device {}", sys, device);
            total += fast.len() as u64;
        }
        prop_assert_eq!(total, query.qualified_count_in(&sys));
    }

    /// Generalized FX with random valid tables keeps Theorems 1–2:
    /// 0/1-optimality always, and strict optimality for patterns with a
    /// large unspecified field.
    #[test]
    fn general_fx_keeps_theorems_1_2(
        (sys, seed) in (arb_system(), any::<u64>())
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = sys.devices();
        let tables: Vec<Vec<u64>> = (0..sys.num_fields())
            .map(|i| {
                let f = sys.field_size(i);
                if f < m {
                    // Random injective map into Z_M.
                    let mut pool: Vec<u64> = (0..m).collect();
                    pool.shuffle(&mut rng);
                    pool.truncate(f as usize);
                    pool
                } else {
                    // Random M-regular table: shuffle the identity within
                    // residue classes preserved (identity is M-regular;
                    // shuffling the whole thing preserves the residue
                    // multiset).
                    let mut t: Vec<u64> = (0..f).collect();
                    t.shuffle(&mut rng);
                    t
                }
            })
            .collect();
        let g = GeneralFxDistribution::new(sys.clone(), tables).expect("constructed valid");
        prop_assert!(is_k_optimal(&g, &sys, 0));
        prop_assert!(is_k_optimal(&g, &sys, 1));
        for pattern in Pattern::all(sys.num_fields()) {
            let unspec = pattern.unspecified_fields(sys.num_fields());
            if unspec.len() >= 2 && unspec.iter().any(|&i| sys.field_covers_devices(i)) {
                prop_assert!(
                    pattern_strict_optimal(&g, &sys, pattern),
                    "{} pattern {:?}", sys, pattern
                );
            }
        }
    }

    /// Devices returned by FX are always in range, and the histogram always
    /// sums to |R(q)|.
    #[test]
    fn histogram_conservation(
        (fx, query) in arb_fx().prop_flat_map(|fx| {
            let q = arb_query(fx.system());
            (Just(fx), q)
        })
    ) {
        let sys = fx.system().clone();
        let hist = response_histogram(&fx, &sys, &query);
        prop_assert_eq!(hist.len() as u64, sys.devices());
        prop_assert_eq!(hist.iter().sum::<u64>(), query.qualified_count_in(&sys));
    }
}
