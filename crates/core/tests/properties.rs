//! Property-based tests for the core FX machinery.
//!
//! These complement the unit tests by sampling random systems,
//! assignments, and queries, and asserting the paper's lemmas and theorems
//! as universally-quantified properties. They run under the
//! [`pmr_rt::check`] harness (`rt_proptest!`): seeded case generation,
//! shrinking by halving, `PMR_CHECK_SEED` replay.

use pmr_core::assign::{Assignment, AssignmentStrategy};
use pmr_core::bits;
use pmr_core::conditions::fx_pattern_reason;
use pmr_core::inverse::{scan_device_buckets, FxInverse};
use pmr_core::method::DistributionMethod;
use pmr_core::optimality::{is_k_optimal, pattern_strict_optimal, response_histogram};
use pmr_core::query::{PartialMatchQuery, Pattern};
use pmr_core::system::SystemConfig;
use pmr_core::transform::{Transform, TransformKind};
use pmr_core::{FxDistribution, GeneralFxDistribution};
use pmr_rt::check::Source;
use pmr_rt::{rt_assume, rt_proptest};

/// Random small system: 1–4 fields, sizes 2^0..2^4, devices 2^1..2^5,
/// bounded so exhaustive checks stay fast.
fn gen_system(src: &mut Source) -> SystemConfig {
    let field_bits = src.vec_of(1..=4, |s| s.u32_in(0..=4));
    let m_bits = src.u32_in(1..=5).max(1);
    let sizes: Vec<u64> = field_bits.iter().map(|&b| 1u64 << b).collect();
    SystemConfig::new(&sizes, 1 << m_bits).expect("powers of two are valid")
}

fn gen_strategy(src: &mut Source) -> AssignmentStrategy {
    [
        AssignmentStrategy::Basic,
        AssignmentStrategy::CycleIu1,
        AssignmentStrategy::CycleIu2,
        AssignmentStrategy::TheoremNine,
    ][src.arm(4)]
}

/// Random kind legal for a (field size, devices) pair.
fn gen_kind_for(src: &mut Source, small: bool) -> TransformKind {
    if small {
        TransformKind::ALL[src.arm(4)]
    } else {
        TransformKind::Identity
    }
}

fn gen_fx(src: &mut Source) -> FxDistribution {
    let sys = gen_system(src);
    let kinds: Vec<TransformKind> = (0..sys.num_fields())
        .map(|i| gen_kind_for(src, sys.is_small_field(i)))
        .collect();
    let a = Assignment::from_kinds(&sys, &kinds).expect("kinds respect smallness");
    FxDistribution::with_assignment(a)
}

/// Random valid query for a system.
fn gen_query(src: &mut Source, sys: &SystemConfig) -> PartialMatchQuery {
    let values: Vec<Option<u64>> = (0..sys.num_fields())
        .map(|i| {
            let f = sys.field_size(i);
            if src.weighted(0.5) {
                None
            } else {
                Some(src.int_in(0, f - 1).min(f - 1))
            }
        })
        .collect();
    PartialMatchQuery::new(sys, &values).expect("values drawn in range")
}

rt_proptest! {
    /// Lemma 1.1 as a property over wide ranges.
    fn lemma_1_1(src) {
        let m_bits = src.u32_in(0..=15);
        let k = src.int_in(0, 65535);
        let m = 1u64 << m_bits;
        let k = k & (m - 1);
        let mut translated = bits::zm_xor_k(m, k);
        translated.sort_unstable();
        assert!(translated.iter().copied().eq(0..m));
    }

    /// Lemma 4.1 as a property.
    fn lemma_4_1(src) {
        let w_bits = src.u32_in(0..=11);
        let l = src.int_in(0, (1 << 20) - 1);
        let w = 1u64 << w_bits;
        let mut got = bits::window_xor(w, l);
        got.sort_unstable();
        let (start, end) = bits::window_of(w, l);
        assert!(got.iter().copied().eq(start..end));
        assert_eq!(start % w, 0);
        assert!((start..end).contains(&l));
    }

    /// Every transform is injective and lands in Z_M (Lemmas 5.1 / 7.1).
    fn transforms_injective(src) {
        let m_bits = src.u32_in(1..=19).max(1);
        let f_bits_delta = src.u32_in(1..=19).max(1);
        let kind_idx = src.arm(4);
        let m = 1u64 << m_bits;
        let f_bits = m_bits.saturating_sub(f_bits_delta.min(m_bits));
        let f = 1u64 << f_bits;
        rt_assume!(f < m || kind_idx == 0);
        let kind = TransformKind::ALL[kind_idx];
        let t = Transform::new(kind, f, m).unwrap();
        let mut image: Vec<u64> = (0..f.min(4096)).map(|l| t.apply(l)).collect();
        assert!(image.iter().all(|&v| v < m));
        image.sort_unstable();
        image.dedup();
        assert_eq!(image.len() as u64, f.min(4096));
    }

    /// Transform inversion round-trips on random values.
    fn transform_invert_roundtrip(src) {
        let m_bits = src.u32_in(1..=19).max(1);
        let f_bits = src.u32_in(0..=18);
        let kind_idx = src.arm(4);
        let l = src.int_in(0, (1 << 19) - 1);
        rt_assume!(f_bits < m_bits);
        let m = 1u64 << m_bits;
        let f = 1u64 << f_bits;
        let l = l & (f - 1);
        let kind = TransformKind::ALL[kind_idx];
        let t = Transform::new(kind, f, m).unwrap();
        assert_eq!(t.invert(t.apply(l)), Some(l));
    }

    /// Theorem 1: every FX distribution (any assignment) is 0- and
    /// 1-optimal.
    fn theorem_1_any_assignment(src) {
        let fx = gen_fx(src);
        let sys = fx.system().clone();
        assert!(is_k_optimal(&fx, &sys, 0));
        assert!(is_k_optimal(&fx, &sys, 1));
    }

    /// Theorem 2: any pattern containing a large unspecified field is
    /// strict optimal, for any assignment.
    fn theorem_2_any_assignment(src) {
        let fx = gen_fx(src);
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let unspecified = pattern.unspecified_fields(sys.num_fields());
            if unspecified.len() >= 2
                && unspecified.iter().any(|&i| sys.field_covers_devices(i))
            {
                assert!(
                    pattern_strict_optimal(&fx, &sys, pattern),
                    "{sys} pattern {pattern:?}"
                );
            }
        }
    }

    /// Soundness of the §4.2 sufficient conditions on random assignments:
    /// certified ⇒ measured optimal.
    fn sufficient_conditions_sound(src) {
        let fx = gen_fx(src);
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let reason = fx_pattern_reason(fx.assignment(), pattern);
            if reason.is_guaranteed() {
                assert!(
                    pattern_strict_optimal(&fx, &sys, pattern),
                    "{} [{}] pattern {:?} reason {:?}",
                    sys,
                    fx.assignment().describe(),
                    pattern,
                    reason
                );
            }
        }
    }

    /// Theorem 9: the auto strategy is perfect optimal whenever at most
    /// three fields are small.
    fn theorem_9_auto_perfect(src) {
        let sys = gen_system(src);
        rt_assume!(sys.small_fields().len() <= 3);
        let fx = FxDistribution::auto(sys.clone()).unwrap();
        assert!(
            pmr_core::optimality::is_perfect_optimal(&fx, &sys),
            "{} [{}]",
            sys,
            fx.assignment().describe()
        );
    }

    /// Histogram shift-invariance holds for FX: the sorted response
    /// histogram is identical across all queries of a pattern.
    fn fx_histograms_shift_invariant(src) {
        let fx = gen_fx(src);
        let sys = fx.system().clone();
        for pattern in Pattern::all(sys.num_fields()) {
            let reference = {
                let q = PartialMatchQuery::zero_representative(&sys, pattern);
                let mut h = response_histogram(&fx, &sys, &q);
                h.sort_unstable();
                h
            };
            let ok = pmr_core::optimality::for_each_query(&sys, pattern, |q| {
                let mut h = response_histogram(&fx, &sys, q);
                h.sort_unstable();
                h == reference
            });
            assert!(ok, "{sys} pattern {pattern:?}");
        }
    }

    /// The FX fast inverse mapping agrees with the generic scan for random
    /// systems, strategies, and queries.
    fn inverse_matches_scan(src) {
        let strategy = gen_strategy(src);
        let sys = gen_system(src);
        let query = gen_query(src, &sys);
        let fx = FxDistribution::with_strategy(sys, strategy).unwrap();
        let sys = fx.system().clone();
        let inv = FxInverse::new(&fx, &query);
        let mut total = 0u64;
        for device in 0..sys.devices() {
            let mut fast = inv.buckets_on(device);
            let mut slow = scan_device_buckets(&fx, &sys, &query, device);
            fast.sort();
            slow.sort();
            assert_eq!(&fast, &slow, "{sys} device {device}");
            total += fast.len() as u64;
        }
        assert_eq!(total, query.qualified_count_in(&sys));
    }

    /// Generalized FX with random valid tables keeps Theorems 1–2:
    /// 0/1-optimality always, and strict optimality for patterns with a
    /// large unspecified field.
    fn general_fx_keeps_theorems_1_2(src) {
        let sys = gen_system(src);
        let m = sys.devices();
        let tables: Vec<Vec<u64>> = (0..sys.num_fields())
            .map(|i| {
                let f = sys.field_size(i);
                if f < m {
                    // Random injective map into Z_M.
                    let mut pool: Vec<u64> = (0..m).collect();
                    src.rng().shuffle(&mut pool);
                    pool.truncate(f as usize);
                    pool
                } else {
                    // Random M-regular table: the identity is M-regular and
                    // shuffling the whole thing preserves the residue
                    // multiset.
                    let mut t: Vec<u64> = (0..f).collect();
                    src.rng().shuffle(&mut t);
                    t
                }
            })
            .collect();
        let g = GeneralFxDistribution::new(sys.clone(), tables).expect("constructed valid");
        assert!(is_k_optimal(&g, &sys, 0));
        assert!(is_k_optimal(&g, &sys, 1));
        for pattern in Pattern::all(sys.num_fields()) {
            let unspec = pattern.unspecified_fields(sys.num_fields());
            if unspec.len() >= 2 && unspec.iter().any(|&i| sys.field_covers_devices(i)) {
                assert!(
                    pattern_strict_optimal(&g, &sys, pattern),
                    "{sys} pattern {pattern:?}"
                );
            }
        }
    }

    /// The per-field transform tables precomputed at `FxDistribution`
    /// construction agree with the closed-form `Transform::apply` on every
    /// field value, and the packed device path agrees with the tuple path
    /// on every bucket — the table microfix and packed layout are lossless.
    fn transform_tables_match_closed_form(src) {
        let fx = gen_fx(src);
        let sys = fx.system().clone();
        for i in 0..sys.num_fields() {
            let t = fx.assignment().transform(i);
            for v in 0..sys.field_size(i) {
                assert_eq!(fx.apply_field(i, v), t.apply(v), "{sys} field {i} value {v}");
            }
        }
        let mut buf = Vec::new();
        for code in sys.all_indices() {
            sys.decode_index(code, &mut buf);
            assert_eq!(fx.device_of_packed(code), fx.device_of(&buf), "{sys} code {code}");
        }
    }

    /// Devices returned by FX are always in range, and the histogram always
    /// sums to |R(q)|.
    fn histogram_conservation(src) {
        let fx = gen_fx(src);
        let query = gen_query(src, fx.system());
        let sys = fx.system().clone();
        let hist = response_histogram(&fx, &sys, &query);
        assert_eq!(hist.len() as u64, sys.devices());
        assert_eq!(hist.iter().sum::<u64>(), query.qualified_count_in(&sys));
    }
}
