//! A realistic end-to-end scenario: a library catalog declustered over a
//! disk array, queried by partial match ("everything by this author in
//! this subject", "everything from 1984", …).
//!
//! Shows the full pipeline — schema → multi-key hashing → FX declustering
//! → parallel retrieval — and compares FX against Disk Modulo on the same
//! workload.
//!
//! Run with `cargo run --example library_catalog`. Set
//! `PMR_TRACE=stderr` (or a file path) to watch the executor's spans and
//! counters stream by; the per-workload trace summary prints either way
//! when tracing is on.

use pmr::baselines::ModuloDistribution;
use pmr::core::method::DistributionMethod;
use pmr::core::FxDistribution;
use pmr::mkh::{FieldType, Record, Schema, Value};
use pmr::rt::Rng;
use pmr::storage::exec::execute_parallel;
use pmr::storage::metrics::BalanceMetrics;
use pmr::storage::{CostModel, DeclusteredFile};

/// Catalog seed — override with `PMR_SEED` for a different synthetic
/// library.
const SEED: u64 = 7;

const AUTHORS: &[&str] = &[
    "Knuth",
    "Codd",
    "Rivest",
    "Gray",
    "Stonebraker",
    "Dijkstra",
    "Lamport",
    "Bachman",
    "McCarthy",
    "Hopper",
    "Liskov",
    "Hamilton",
];
const SUBJECTS: &[&str] = &[
    "databases",
    "algorithms",
    "os",
    "networks",
    "graphics",
    "ai",
    "crypto",
    "compilers",
];
const LANGUAGES: &[&str] = &["en", "de", "fr", "jp"];

fn catalog_schema() -> Schema {
    Schema::builder()
        .field("author", FieldType::Str, 16)
        .field("year", FieldType::Int, 8)
        .field("subject", FieldType::Str, 8)
        .field("language", FieldType::Str, 4)
        .devices(16)
        .build()
        .expect("catalog schema is valid")
}

fn synthetic_catalog(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Record::new(vec![
                (*AUTHORS[rng.gen_range(0..AUTHORS.len())]).into(),
                Value::Int(1950 + rng.gen_range(0..75i64)),
                (*SUBJECTS[rng.gen_range(0..SUBJECTS.len())]).into(),
                (*LANGUAGES[rng.gen_range(0..LANGUAGES.len())]).into(),
            ])
        })
        .collect()
}

fn run_workload<D: DistributionMethod>(label: &str, method: D) {
    let schema = catalog_schema();
    let mut file = DeclusteredFile::new(schema, method, 2024).expect("system matches");
    file.insert_all(synthetic_catalog(50_000, pmr::rt::seed_from_env_or(SEED)))
        .expect("inserts succeed");

    let cost = CostModel::disk_1988();
    let queries: Vec<(&str, Vec<(&str, Value)>)> = vec![
        ("author = Codd", vec![("author", "Codd".into())]),
        ("year = 1984", vec![("year", Value::Int(1984))]),
        (
            "author = Knuth AND subject = algorithms",
            vec![("author", "Knuth".into()), ("subject", "algorithms".into())],
        ),
        ("subject = databases", vec![("subject", "databases".into())]),
        ("language = en", vec![("language", "en".into())]),
    ];

    println!("== {label} ==");
    let mut worst_imbalance: f64 = 1.0;
    let mut spans = 0u64;
    let mut fast = 0u64;
    for (desc, specs) in queries {
        let q = file.query(&specs).expect("query is valid");
        let report = execute_parallel(&file, &q, &cost).expect("execution succeeds");
        let m = BalanceMetrics::of(&report.histogram());
        worst_imbalance = worst_imbalance.max(m.imbalance);
        if let Some(trace) = &report.trace {
            spans += trace.spans;
            fast += trace.counter("exec.fast_path.dispatched");
        }
        println!(
            "  {desc:<42} buckets/device max {:>3} (optimal {:>3}) \
             records {:>5} time {:>6.1} ms speedup {:>5.2}x",
            m.largest,
            m.optimal,
            report.records.len(),
            report.simulated_response_us / 1000.0,
            report.speedup(),
        );
    }
    println!("  worst bucket-imbalance across workload: {worst_imbalance:.2}x optimal");
    if pmr::rt::obs::enabled() {
        println!(
            "  trace: {spans} spans across the workload, {fast}/5 queries on the FX fast path"
        );
    }
    println!();
}

fn main() {
    let sys = catalog_schema().system().clone();
    println!(
        "library catalog: {} buckets over {} disks\n",
        sys.total_buckets(),
        sys.devices()
    );
    run_workload(
        "FX declustering (auto transforms)",
        FxDistribution::auto(sys.clone()).expect("valid configuration"),
    );
    run_workload("Disk Modulo declustering", ModuloDistribution::new(sys));
}
