//! Designing field sizes from query statistics, then growing the file.
//!
//! Two substrate features the paper leans on without spelling out:
//!
//! 1. **Field-size design** — how many directory bits each field deserves
//!    given how often queries specify it (\[RoLo74\]/\[AhU179\]; NP-hard in
//!    general \[Du85\]).
//! 2. **Dynamic growth** — power-of-two field sizes come from dynamic
//!    hashing directories; doubling a field splits each bucket in two, and
//!    the FX distribution keeps the balance guarantee at the new size.
//!
//! Run with `cargo run --example design_and_grow`.

use pmr::core::{optimality, FxDistribution};
use pmr::mkh::directory::DynamicDirectory;
use pmr::mkh::{design_field_bits, DesignInput, FieldType, Schema};

fn main() {
    // Suppose query logs say: author specified 80% of the time, year 40%,
    // subject 25%, language 10%. Budget: 10 directory bits (1024 buckets).
    let input = DesignInput {
        spec_probability: vec![0.80, 0.40, 0.25, 0.10],
        total_bits: 10,
        max_bits: None,
    };
    let design = design_field_bits(&input).expect("valid design input");
    println!("query statistics  : {:?}", input.spec_probability);
    println!(
        "bit allocation    : {:?} (field sizes {:?})",
        design.bits, design.field_sizes
    );
    println!(
        "expected buckets  : {:.1} per query\n",
        design.expected_buckets
    );

    // Build the schema from the design and open a dynamic directory.
    let names = ["author", "year", "subject", "language"];
    let mut builder = Schema::builder();
    for (name, &size) in names.iter().zip(&design.field_sizes) {
        builder = builder.field(*name, FieldType::Str, size);
    }
    let schema = builder
        .devices(8)
        .build()
        .expect("designed schema is valid");
    let mut dir = DynamicDirectory::new(schema, 99);

    // Grow the file: each expansion doubles one field. After every step,
    // re-derive the FX distribution and verify the balance guarantee
    // empirically.
    for step in 0..4 {
        let sys = dir.schema().system().clone();
        let fx = FxDistribution::auto(sys.clone()).expect("valid configuration");
        let perfect = optimality::is_perfect_optimal(&fx, &sys);
        println!(
            "step {step}: sizes {:?} -> FX({}) perfect optimal: {perfect}",
            sys.field_sizes(),
            fx.assignment().describe(),
        );
        let doubled = dir.expand().expect("expansion fits the index budget");
        println!("        doubling field {} ({})", doubled, names[doubled]);
    }
    let final_sys = dir.schema().system().clone();
    println!(
        "\nfinal: {} buckets over {} devices after {} expansions",
        final_sys.total_buckets(),
        final_sys.devices(),
        dir.expansions()
    );
}
