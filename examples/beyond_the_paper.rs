//! Beyond the paper: searching transformation tables the authors only
//! promised.
//!
//! The paper's closing line — "We are developing more general
//! transformation functions to achieve optimal data distribution for much
//! larger class of partial match queries" — is implemented here: FX's
//! four closed-form transforms generalise to arbitrary injective tables
//! (`pmr::core::GeneralFxDistribution`), and simulated annealing searches
//! that space (`pmr::analysis::optimize`).
//!
//! The demo takes a system where the paper's own machinery provably hits
//! a wall (four small fields — Theorem 9 no longer applies) and finds a
//! *perfect optimal* table set, then verifies it with the exhaustive
//! ground-truth checker.
//!
//! Run with `cargo run --release --example beyond_the_paper`.

use pmr::analysis::optimize::{anneal, AnnealOptions};
use pmr::core::optimality::is_perfect_optimal;
use pmr::core::{AssignmentStrategy, FxDistribution, SystemConfig};

fn main() {
    // Four fields of size 4 on sixteen devices: every field is small, so
    // none of Theorems 4-9 apply and the best closed-form assignment
    // leaves one query pattern unbalanced.
    let sys = SystemConfig::new(&[4, 4, 4, 4], 16).expect("valid configuration");
    println!(
        "system: {sys} — {} small fields\n",
        sys.small_fields().len()
    );

    for (name, strategy) in [
        ("basic (no transforms)", AssignmentStrategy::Basic),
        ("cycle I,U,IU1", AssignmentStrategy::CycleIu1),
        ("cycle I,U,IU2", AssignmentStrategy::CycleIu2),
        ("theorem-9 heuristic", AssignmentStrategy::TheoremNine),
    ] {
        let fx = FxDistribution::with_strategy(sys.clone(), strategy).expect("valid configuration");
        println!(
            "closed form {name:<22} perfect optimal: {}",
            is_perfect_optimal(&fx, &sys)
        );
    }

    println!("\nannealing generalized tables…");
    let options = AnnealOptions {
        steps: 4_000,
        initial_temperature: 4.0,
        seed: 7,
        restarts: 6,
    };
    let result = anneal(&sys, &options).expect("valid configuration");
    println!(
        "objective {} (analytic bound {}), strict-optimal patterns {}/{}",
        result.score,
        result.lower_bound,
        result.optimal_patterns,
        1 << sys.num_fields()
    );
    let perfect = is_perfect_optimal(&result.distribution, &sys);
    println!("ground-truth verification: perfect optimal = {perfect}");
    println!("\ndiscovered tables:");
    for (i, table) in result.distribution.tables().iter().enumerate() {
        println!("  field {i}: {:?}", &table[..]);
    }
    println!(
        "\nNote: [Sung87] proves SOME systems with 4+ small fields admit no \
         perfect distribution; this one does, and the search constructs it."
    );
}
