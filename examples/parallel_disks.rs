//! The paper's §5.2.1 scenario in miniature: a symmetric disk array where
//! query response time is governed by the busiest device.
//!
//! Sweeps the number of unspecified fields (the paper's Tables 7–9 rows)
//! and prints the average largest response size and the simulated response
//! time for FX, GDM, and Disk Modulo side by side.
//!
//! Run with `cargo run --release --example parallel_disks`. Set
//! `PMR_TRACE=<path>` to record the sweep's inverse-mapping metrics as
//! JSON lines, then aggregate with `pmr stats <path>`.

use pmr::analysis::response::{average_largest_response, optimal_average};
use pmr::baselines::gdm::PaperGdmSet;
use pmr::baselines::{GdmDistribution, ModuloDistribution};
use pmr::core::method::DistributionMethod;
use pmr::core::{AssignmentStrategy, FxDistribution, SystemConfig};
use pmr::storage::CostModel;

fn main() {
    // Table 7's system: six fields of size 8 over 32 devices.
    let sys = SystemConfig::new(&[8; 6], 32).expect("valid configuration");
    let cost = CostModel::disk_1988();

    let dm = ModuloDistribution::new(sys.clone());
    let gdm = GdmDistribution::paper_set(sys.clone(), PaperGdmSet::Gdm1);
    let fx = FxDistribution::with_strategy(sys.clone(), AssignmentStrategy::CycleIu1)
        .expect("valid configuration");
    let methods: [(&str, &dyn DistributionMethod); 3] =
        [("Modulo", &dm), ("GDM1", &gdm), ("FX", &fx)];

    println!(
        "disk array: {sys}, {:.0} ms seek + {:.0} ms/bucket",
        cost.seek_us / 1000.0,
        cost.transfer_us_per_bucket / 1000.0
    );
    println!();
    println!(
        "{:<4} {:>10} {:>22} {:>22} {:>22}",
        "k", "optimal", "Modulo (resp/ms)", "GDM1 (resp/ms)", "FX (resp/ms)"
    );
    for k in 2..=6u32 {
        let optimal = optimal_average(&sys, k);
        print!("{k:<4} {optimal:>10.1}");
        for (_, method) in methods {
            let avg = average_largest_response(method, &sys, k);
            // Paper model: response time ~ seek + largest-response · transfer.
            let time_ms = cost.device_time_us(avg.round() as u64, 0) / 1000.0;
            print!(" {:>13.1} {:>8.1}", avg, time_ms);
        }
        println!();
    }
    println!();
    println!(
        "Reading: FX tracks the optimal column (perfect balance) while Modulo \
         pays up to {}x more I/O on the busiest disk.",
        (average_largest_response(&dm, &sys, 3) / optimal_average(&sys, 3)).round()
    );
    if pmr::rt::obs::enabled() {
        // With PMR_TRACE set, leave the final registry totals in the
        // trace so `pmr stats` can aggregate the sweep.
        println!();
        for (name, total) in pmr::rt::obs::counters_snapshot() {
            println!("trace counter {name} = {total}");
        }
        pmr::rt::obs::flush();
    }
}
