//! Quickstart: decluster a bucket space with FX and watch a partial match
//! query spread evenly over devices.
//!
//! Run with `cargo run --example quickstart`.

use pmr::core::method::DistributionMethod;
use pmr::core::optimality;
use pmr::core::{FxDistribution, PartialMatchQuery, SystemConfig};

fn main() {
    // A file with three hashed fields of sizes 8, 8, 4 spread over 16
    // parallel devices (all powers of two, as the paper assumes).
    let sys = SystemConfig::new(&[8, 8, 4], 16).expect("valid configuration");
    println!("system: {sys}");

    // `auto` picks transformations by the paper's Theorem 9 construction:
    // with at most three fields smaller than M, the distribution is
    // PERFECT optimal — every partial match query is spread as evenly as
    // arithmetic allows.
    let fx = FxDistribution::auto(sys.clone()).expect("valid configuration");
    println!(
        "method: {} (transforms {})",
        fx.name(),
        fx.assignment().describe()
    );

    // Where does bucket <3, 5, 1> live?
    let bucket = [3, 5, 1];
    println!("bucket {bucket:?} -> device {}", fx.device_of(&bucket));

    // A partial match query: second field = 5, others unspecified.
    // It qualifies 8 · 4 = 32 buckets.
    let query = PartialMatchQuery::new(&sys, &[None, Some(5), None]).unwrap();
    let histogram = optimality::response_histogram(&fx, &sys, &query);
    println!(
        "\nquery {query}: {} qualified buckets",
        query.qualified_count_in(&sys)
    );
    println!("per-device response sizes: {histogram:?}");
    println!(
        "largest response {} vs optimal bound {} -> strict optimal: {}",
        optimality::largest_response(&fx, &sys, &query),
        optimality::optimal_bound(&sys, &query),
        optimality::is_strict_optimal(&fx, &sys, &query),
    );

    // And indeed every query in this system is:
    println!(
        "perfect optimal over all {} query patterns: {}",
        1 << sys.num_fields(),
        optimality::is_perfect_optimal(&fx, &sys)
    );
}
