//! The paper's motivating scenario: a massively parallel machine.
//!
//! "For a large number of parallel processing nodes such as Butterfly
//! machines, Modulo distribution may not be appropriate" — because with
//! `M` in the hundreds, most fields hash into *fewer* classes than there
//! are processors (`F_i < M`), exactly the regime where Disk Modulo
//! degrades and FX's field transformations keep queries balanced.
//!
//! This example declusters a file over a 128-node machine where every
//! field is smaller than `M`, and contrasts per-query concurrency (how
//! many nodes share the work) under FX and Modulo.
//!
//! Run with `cargo run --release --example butterfly`.

use pmr::baselines::ModuloDistribution;
use pmr::core::optimality::response_histogram;
use pmr::core::{FxDistribution, PartialMatchQuery, SystemConfig};

fn busy_nodes(hist: &[u64]) -> usize {
    hist.iter().filter(|&&c| c > 0).count()
}

fn main() {
    // 128 processing nodes; four fields with 8–16 hash classes each —
    // every field is far smaller than M.
    let sys = SystemConfig::new(&[16, 16, 8, 8], 128).expect("valid configuration");
    let fx = FxDistribution::auto(sys.clone()).expect("valid configuration");
    let dm = ModuloDistribution::new(sys.clone());
    println!("machine: {} nodes, file: {sys}", sys.devices());
    println!("FX transforms: {}\n", fx.assignment().describe());

    let queries: Vec<(&str, Vec<Option<u64>>)> = vec![
        ("one field free ", vec![Some(3), Some(7), Some(2), None]),
        ("two fields free", vec![Some(3), None, Some(2), None]),
        ("three free     ", vec![None, Some(7), None, None]),
        ("full scan      ", vec![None, None, None, None]),
    ];

    println!(
        "{:<16} {:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "query", "|R(q)|", "FX busy", "FX max", "DM busy", "DM max"
    );
    println!("{}", "-".repeat(72));
    for (label, values) in queries {
        let q = PartialMatchQuery::new(&sys, &values).expect("valid query");
        let fx_hist = response_histogram(&fx, &sys, &q);
        let dm_hist = response_histogram(&dm, &sys, &q);
        println!(
            "{label:<16} {:>6} | {:>10} {:>10} | {:>10} {:>10}",
            q.qualified_count_in(&sys),
            busy_nodes(&fx_hist),
            fx_hist.iter().max().unwrap(),
            busy_nodes(&dm_hist),
            dm_hist.iter().max().unwrap(),
        );
    }

    println!();
    println!(
        "FX engages min(|R(q)|, {m}) nodes with level load on these queries \
         (each contains a different-transform field pair whose sizes \
         multiply to at least {m} — §4.2 condition 3/4a/5a); Modulo \
         concentrates the same buckets on a fraction of the nodes, so its \
         busiest node — which sets the response time — carries several \
         times the optimal load.",
        m = sys.devices(),
    );
}
