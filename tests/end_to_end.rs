//! Cross-crate integration: schema → multi-key hashing → declustering →
//! parallel retrieval, for every distribution method.

use pmr::baselines::{GdmDistribution, ModuloDistribution, RandomDistribution};
use pmr::core::method::DistributionMethod;
use pmr::core::FxDistribution;
use pmr::mkh::{FieldType, Record, Schema, Value};
use pmr::rt::rng::SliceRandom;
use pmr::rt::Rng;
use pmr::storage::exec::execute_parallel;
use pmr::storage::metrics::BalanceMetrics;
use pmr::storage::{CostModel, DeclusteredFile};

fn schema() -> Schema {
    Schema::builder()
        .field("user", FieldType::Int, 16)
        .field("action", FieldType::Str, 8)
        .field("region", FieldType::Int, 4)
        .devices(8)
        .build()
        .unwrap()
}

fn events(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = Rng::seed_from_u64(seed);
    let actions = ["view", "click", "buy", "share"];
    (0..n)
        .map(|_| {
            Record::new(vec![
                Value::Int(rng.gen_range(0..5000i64)),
                (*actions.choose(&mut rng).expect("actions is non-empty")).into(),
                Value::Int(rng.gen_range(0..50i64)),
            ])
        })
        .collect()
}

fn pipeline_roundtrip<D: DistributionMethod>(method: D) {
    let schema = schema();
    let mut file = DeclusteredFile::new(schema, method, 31).unwrap();
    let records = events(5_000, 17);
    file.insert_all(records.clone()).unwrap();
    assert_eq!(file.record_count(), 5_000);
    assert_eq!(file.record_occupancy().iter().sum::<u64>(), 5_000);

    // Every record must be retrievable through a query specifying its own
    // attribute values (spot-check a sample).
    for r in records.iter().step_by(997) {
        let q = file
            .query(&[
                ("user", r.values()[0].clone()),
                ("action", r.values()[1].clone()),
                ("region", r.values()[2].clone()),
            ])
            .unwrap();
        let got = file.retrieve_serial(&q).unwrap();
        assert!(
            got.contains(r),
            "record {r} lost by {}",
            file.method().name()
        );
    }

    // Parallel and serial retrieval agree on a broad query.
    let q = file.query(&[("action", "buy".into())]).unwrap();
    let mut serial = file.retrieve_serial(&q).unwrap();
    let report = execute_parallel(&file, &q, &CostModel::main_memory()).unwrap();
    let mut parallel = report.records.clone();
    serial.sort_by_key(|r| format!("{r}"));
    parallel.sort_by_key(|r| format!("{r}"));
    assert_eq!(
        serial,
        parallel,
        "parallel/serial divergence under {}",
        file.method().name()
    );

    // Histogram conservation.
    assert_eq!(
        report.histogram().iter().sum::<u64>(),
        q.qualified_count_in(file.system())
    );
}

#[test]
fn fx_pipeline_roundtrip() {
    let sys = schema().system().clone();
    pipeline_roundtrip(FxDistribution::auto(sys).unwrap());
}

#[test]
fn modulo_pipeline_roundtrip() {
    let sys = schema().system().clone();
    pipeline_roundtrip(ModuloDistribution::new(sys));
}

#[test]
fn gdm_pipeline_roundtrip() {
    let sys = schema().system().clone();
    pipeline_roundtrip(GdmDistribution::new(sys, vec![3, 5, 7]).unwrap());
}

#[test]
fn random_pipeline_roundtrip() {
    let sys = schema().system().clone();
    pipeline_roundtrip(RandomDistribution::new(sys, 23));
}

/// FX's balance guarantee survives the full pipeline: for single-field
/// queries the per-device bucket histogram is strict optimal, whatever the
/// data skew.
#[test]
fn fx_balance_guarantee_end_to_end() {
    let schema = schema();
    let sys = schema.system().clone();
    let fx = FxDistribution::auto(sys.clone()).unwrap();
    let mut file = DeclusteredFile::new(schema, fx, 5).unwrap();
    // Heavily skewed data: one user generates half the events.
    let mut records = events(2_000, 3);
    records.extend(
        (0..2_000).map(|i| Record::new(vec![Value::Int(42), "view".into(), Value::Int(i % 50)])),
    );
    file.insert_all(records).unwrap();

    for (field, value) in [
        ("user", Value::Int(42)),
        ("action", "view".into()),
        ("region", Value::Int(7)),
    ] {
        let q = file.query(&[(field, value)]).unwrap();
        let report = execute_parallel(&file, &q, &CostModel::main_memory()).unwrap();
        let m = BalanceMetrics::of(&report.histogram());
        assert!(
            m.is_strict_optimal(),
            "{field}: histogram {:?} exceeds optimal {}",
            report.histogram(),
            m.optimal
        );
    }
}

/// Directory growth keeps data findable: expand a field, rebuild the file
/// at the new size, and verify every record is still retrieved.
#[test]
fn growth_preserves_retrievability() {
    use pmr::mkh::directory::DynamicDirectory;

    let mut dir = DynamicDirectory::new(schema(), 31);
    let records = events(1_000, 5);

    for _round in 0..3 {
        let sys = dir.schema().system().clone();
        let fx = FxDistribution::auto(sys).unwrap();
        let mut file = DeclusteredFile::new(dir.schema().clone(), fx, 31).unwrap();
        file.insert_all(records.clone()).unwrap();
        for r in records.iter().step_by(211) {
            let q = file.query(&[("user", r.values()[0].clone())]).unwrap();
            assert!(file.retrieve_serial(&q).unwrap().contains(r));
        }
        dir.expand().unwrap();
    }
}
