//! Batch-vs-serial equivalence property for the resident executor.
//!
//! The resident [`Executor`] (PR: "Resident per-device executor") must be
//! a pure throughput optimisation: for any batch of queries,
//! `execute_batch` reports are **bit-identical** to running the same
//! queries one at a time through the scoped policy path
//! ([`execute_parallel_with`]) — same records in the same order, same
//! per-device reports, same simulated times, same coverage — apart from
//! the `trace` slot, which is always `None` on batch reports. This must
//! hold on fault-free runs *and* under an installed [`FaultPlan`] with
//! mirroring, where the retry/failover/lose policy runs on the resident
//! workers.
//!
//! The property samples random Table 7 query mixes, batch sizes, policy
//! seeds, and fault plans under the [`pmr_rt::check`] harness
//! (`PMR_CHECK_SEED` replays a failure).

use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_rt::check::Source;
use pmr_rt::fault::{FaultPlan, RetryPolicy};
use pmr_rt::rt_proptest;
use pmr_storage::exec::{
    execute_parallel, execute_parallel_with, ExecPolicy, Executor, Redundancy,
};
use pmr_storage::{CostModel, DeclusteredFile};
use std::sync::{Arc, Mutex, OnceLock};

const SEED: u64 = 0xBA7C;

/// Serialises fault-plan installs and cache-capacity toggles on the
/// shared `'static` fixtures: both properties mutate device-wide state,
/// and `cargo test` runs them on concurrent threads.
fn plan_gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// The paper's Table 7 system (6 fields of 8 buckets, M = 32), mirrored,
/// built once: the resident executor's 32 workers are shared by every
/// case, which is exactly the deployment model under test.
fn table7() -> (
    &'static DeclusteredFile<FxDistribution>,
    &'static Executor<FxDistribution>,
) {
    static STATE: OnceLock<(DeclusteredFile<FxDistribution>, Executor<FxDistribution>)> =
        OnceLock::new();
    let (file, exec) = STATE.get_or_init(|| {
        let sys = SystemConfig::new(&[8; 6], 32).unwrap();
        let mut builder = Schema::builder();
        for (i, &size) in sys.field_sizes().iter().enumerate() {
            builder = builder.field(format!("f{i}"), FieldType::Int, size);
        }
        let schema = builder
            .devices(sys.devices())
            .build()
            .expect("system is valid");
        let fx = FxDistribution::auto(sys.clone()).expect("auto always assigns");
        let mut file = DeclusteredFile::new(schema, fx, SEED).expect("schema matches system");
        assert!(file.enable_mirroring());
        for i in 0..2_000i64 {
            let values: Vec<Value> = (0..sys.num_fields())
                .map(|f| Value::Int(i * 131 + f as i64 * 7))
                .collect();
            file.insert(Record::new(values))
                .expect("records type-check");
        }
        // Mirroring is enabled before construction: the executor
        // snapshots the buddy pairing.
        let exec = Executor::new(&file, CostModel::main_memory());
        (file, exec)
    });
    (file, exec)
}

/// Parity twin of [`table7`]: the same system and load, protected by
/// `Parity{k = 4, r = 2}` stripes instead of buddy mirrors.
fn table7_parity() -> (
    &'static DeclusteredFile<FxDistribution>,
    &'static Executor<FxDistribution>,
) {
    static STATE: OnceLock<(DeclusteredFile<FxDistribution>, Executor<FxDistribution>)> =
        OnceLock::new();
    let (file, exec) = STATE.get_or_init(|| {
        let sys = SystemConfig::new(&[8; 6], 32).unwrap();
        let mut builder = Schema::builder();
        for (i, &size) in sys.field_sizes().iter().enumerate() {
            builder = builder.field(format!("f{i}"), FieldType::Int, size);
        }
        let schema = builder
            .devices(sys.devices())
            .build()
            .expect("system is valid");
        let fx = FxDistribution::auto(sys.clone()).expect("auto always assigns");
        let mut file = DeclusteredFile::new(schema, fx, SEED).expect("schema matches system");
        for i in 0..2_000i64 {
            let values: Vec<Value> = (0..sys.num_fields())
                .map(|f| Value::Int(i * 131 + f as i64 * 7))
                .collect();
            file.insert(Record::new(values))
                .expect("records type-check");
        }
        assert!(file.enable_parity(4, 2), "k + r = 6 <= 32 devices");
        let exec = Executor::new(&file, CostModel::main_memory());
        (file, exec)
    });
    (file, exec)
}

/// Random Table 7 query with 1–3 unspecified fields (|R(q)| ≤ 512),
/// unspecified positions scattered rather than suffix-only.
fn gen_query(src: &mut Source, sys: &SystemConfig) -> PartialMatchQuery {
    let unspecified = src.int_in(1, 3) as usize;
    let n = sys.num_fields();
    let mut free: Vec<usize> = Vec::new();
    while free.len() < unspecified {
        let f = src.int_in(0, n as u64 - 1) as usize;
        if !free.contains(&f) {
            free.push(f);
        }
    }
    let values: Vec<Option<u64>> = (0..n)
        .map(|i| {
            if free.contains(&i) {
                None
            } else {
                Some(src.int_in(0, sys.field_size(i) - 1))
            }
        })
        .collect();
    PartialMatchQuery::new(sys, &values).expect("values in range")
}

rt_proptest! {
    /// ISSUE acceptance property: `execute_batch` ≡ per-query
    /// `execute_parallel_with`, bit-for-bit, across random query mixes,
    /// batch sizes, seeds, and fault plans (including none), with
    /// mirroring enabled throughout.
    fn batch_is_bit_equal_to_per_query_execution(src) {
        let (file, exec) = table7();
        let sys = file.system().clone();
        let cost = CostModel::main_memory();

        let batch_size = src.int_in(1, 8) as usize;
        let queries: Vec<PartialMatchQuery> =
            (0..batch_size).map(|_| gen_query(src, &sys)).collect();
        let policy = ExecPolicy {
            retry: RetryPolicy { max_attempts: 4, base_us: 10, cap_us: 1_000, budget_us: 100_000 },
            failover: src.weighted(0.8),
            redundancy: Redundancy::Mirror,
            seed: src.any_u64(),
            // Random cache capacity, including disabled: batch reports
            // must be bit-equal at any setting.
            cache: match src.arm(3) {
                0 => None,
                1 => Some(0),
                _ => Some(src.int_in(1, 128) as usize),
            },
        };
        let plan = if src.weighted(0.5) {
            let mut plan = FaultPlan::new(src.any_u64());
            if src.weighted(0.6) {
                plan = plan.with_read_error(0.2);
            }
            if src.weighted(0.4) {
                plan = plan.with_dead_device(src.int_in(0, sys.devices() - 1));
            }
            Some(Arc::new(plan))
        } else {
            None
        };

        let _gate = plan_gate().lock().unwrap_or_else(|e| e.into_inner());
        file.install_fault_plan(plan.clone());
        let batch = exec.execute_batch(&queries, &policy);
        let serial: Vec<_> = queries
            .iter()
            .map(|q| {
                let mut report =
                    execute_parallel_with(file, q, &cost, &policy).expect("policy path never errors");
                report.trace = None;
                report
            })
            .collect();
        file.install_fault_plan(None);

        assert_eq!(batch.len(), serial.len());
        for (i, (got, want)) in batch.iter().zip(&serial).enumerate() {
            assert_eq!(
                got, want,
                "query {i}/{batch_size} ({}) diverged under plan {:?}",
                queries[i],
                plan.is_some()
            );
        }
    }

    /// ISSUE acceptance property: the decoded-page cache never shows up
    /// in results. Strict, policy (mirror or `Parity{4,2}`, with and
    /// without an installed fault plan), and batch reports are
    /// bit-identical with the cache at a random capacity — cold *and*
    /// pre-warmed — versus disabled.
    fn cache_on_and_off_reports_are_bit_equal(src) {
        let cost = CostModel::main_memory();
        let parity = src.weighted(0.3);
        let (file, exec) = if parity { table7_parity() } else { table7() };
        let sys = file.system().clone();

        let batch_size = src.int_in(1, 4) as usize;
        let queries: Vec<PartialMatchQuery> =
            (0..batch_size).map(|_| gen_query(src, &sys)).collect();
        let capacity = src.int_in(1, 256) as usize;
        let on = ExecPolicy {
            retry: RetryPolicy { max_attempts: 4, base_us: 10, cap_us: 1_000, budget_us: 100_000 },
            failover: true,
            redundancy: if parity {
                Redundancy::Parity { k: 4, r: 2 }
            } else {
                Redundancy::Mirror
            },
            seed: src.any_u64(),
            cache: Some(capacity),
        };
        let off = ExecPolicy { cache: Some(0), ..on };
        let plan = if src.weighted(0.6) {
            let mut plan = FaultPlan::new(src.any_u64());
            if src.weighted(0.6) {
                plan = plan.with_read_error(0.2);
            }
            if src.weighted(0.4) {
                plan = plan.with_dead_device(src.int_in(0, sys.devices() - 1));
            }
            Some(Arc::new(plan))
        } else {
            None
        };

        let _gate = plan_gate().lock().unwrap_or_else(|e| e.into_inner());
        file.install_fault_plan(plan.clone());
        for q in &queries {
            // Two cache-on passes: the first fills the cache, the second
            // reads through it hot. Both must match the disabled run.
            let first = execute_parallel_with(file, q, &cost, &on).expect("policy path never errors");
            let warm = execute_parallel_with(file, q, &cost, &on).expect("policy path never errors");
            let cold = execute_parallel_with(file, q, &cost, &off).expect("policy path never errors");
            assert_eq!(first, cold, "cold cache-on diverged ({q}, parity {parity})");
            assert_eq!(warm, cold, "warm cache-on diverged ({q}, parity {parity})");
        }
        let batch_on = exec.execute_batch(&queries, &on);
        let batch_off = exec.execute_batch(&queries, &off);
        assert_eq!(batch_on, batch_off, "batch path diverged (parity {parity})");
        file.install_fault_plan(None);

        // The strict dispatcher takes no policy: toggle the device-level
        // capacity directly.
        file.set_cache_capacity(capacity);
        let strict_first = execute_parallel(file, &queries[0], &cost).expect("no faults installed");
        let strict_warm = execute_parallel(file, &queries[0], &cost).expect("no faults installed");
        file.set_cache_capacity(0);
        let strict_off = execute_parallel(file, &queries[0], &cost).expect("no faults installed");
        assert_eq!(strict_first, strict_off, "strict cold diverged");
        assert_eq!(strict_warm, strict_off, "strict warm diverged");
    }
}
