//! Packed-code equivalence properties across every in-tree
//! [`DistributionMethod`].
//!
//! The packed bucket representation (PR: "Packed bucket codes") is only
//! admissible if it is *lossless*: for every method, every bucket, and
//! every query, the packed paths (`device_of_packed`,
//! `QualifiedBuckets::next_code`, `for_each_device_code`,
//! `FxInverse::for_each_code_on`, the dispatching executor) must produce
//! byte-identical results to the legacy tuple/`Vec<u64>` paths. These
//! properties pin that equivalence over randomly sampled systems,
//! methods, and queries under the [`pmr_rt::check`] harness
//! (`PMR_CHECK_SEED` replays a failure).

use pmr_baselines::gdm::PaperGdmSet;
use pmr_baselines::{
    BinaryWeightedDistribution, GdmDistribution, GrayCodeDistribution, ModuloDistribution,
    RandomDistribution, SpanningPathDistribution,
};
use pmr_core::inverse::{for_each_device_code, scan_device_buckets, FxInverse};
use pmr_core::method::DistributionMethod;
use pmr_core::optimality::response_histogram;
use pmr_core::{
    AssignmentStrategy, FxDistribution, GeneralFxDistribution, PartialMatchQuery, SystemConfig,
};
use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_rt::check::Source;
use pmr_rt::rt_proptest;
use pmr_storage::exec::{
    execute_parallel, execute_parallel_fx, execute_parallel_scan, fx_fast_path_pays_off,
};
use pmr_storage::{CostModel, DeclusteredFile};

/// Random small system: 1–4 fields, sizes 2^0..2^4, devices 2^1..2^5.
fn gen_system(src: &mut Source) -> SystemConfig {
    let field_bits = src.vec_of(1..=4, |s| s.u32_in(0..=4));
    let m_bits = src.u32_in(1..=5).max(1);
    let sizes: Vec<u64> = field_bits.iter().map(|&b| 1u64 << b).collect();
    SystemConfig::new(&sizes, 1 << m_bits).expect("powers of two are valid")
}

/// Random valid query for a system.
fn gen_query(src: &mut Source, sys: &SystemConfig) -> PartialMatchQuery {
    let values: Vec<Option<u64>> = (0..sys.num_fields())
        .map(|i| {
            let f = sys.field_size(i);
            if src.weighted(0.5) {
                None
            } else {
                Some(src.int_in(0, f - 1).min(f - 1))
            }
        })
        .collect();
    PartialMatchQuery::new(sys, &values).expect("values drawn in range")
}

/// Every in-tree method applicable to `sys` (spanning and the binary-CPF
/// allocators gate themselves on system shape).
fn all_methods(src: &mut Source, sys: &SystemConfig) -> Vec<Box<dyn DistributionMethod>> {
    let strategy = [
        AssignmentStrategy::Basic,
        AssignmentStrategy::CycleIu1,
        AssignmentStrategy::CycleIu2,
    ][src.arm(3)];
    let fx = FxDistribution::with_strategy(sys.clone(), strategy)
        .unwrap_or_else(|_| FxDistribution::auto(sys.clone()).expect("auto always assigns"));
    let mut methods: Vec<Box<dyn DistributionMethod>> = vec![
        Box::new(GeneralFxDistribution::from_assignment(fx.assignment())),
        Box::new(fx),
        Box::new(ModuloDistribution::new(sys.clone())),
        Box::new(GdmDistribution::paper_set(sys.clone(), PaperGdmSet::Gdm1)),
        Box::new(RandomDistribution::new(sys.clone(), src.int_in(0, 1 << 20))),
    ];
    if sys.total_buckets() <= 256 {
        methods.push(Box::new(
            SpanningPathDistribution::build(sys.clone()).expect("small bucket space"),
        ));
    }
    if (0..sys.num_fields()).all(|i| sys.field_size(i) == 2) {
        methods.push(Box::new(
            BinaryWeightedDistribution::new(sys.clone()).expect("binary system"),
        ));
        methods.push(Box::new(
            GrayCodeDistribution::new(sys.clone()).expect("binary system"),
        ));
    }
    methods
}

rt_proptest! {
    /// `device_of_packed` agrees with `device_of` on every bucket, for
    /// every method.
    fn packed_device_matches_tuple(src) {
        let sys = gen_system(src);
        let mut buf = Vec::new();
        for method in all_methods(src, &sys) {
            for code in sys.all_indices() {
                sys.decode_index(code, &mut buf);
                assert_eq!(
                    method.device_of_packed(code),
                    method.device_of(&buf),
                    "{} on {sys} code {code}",
                    method.name()
                );
            }
        }
    }

    /// `device_of_batch` is bit-equal to per-record `device_of_packed`
    /// for every method, over random code batches (exercising both the
    /// full fixed-width lanes and the scalar tails of every override).
    fn batched_devices_match_scalar(src) {
        let sys = gen_system(src);
        let count = src.int_in(0, 200) as usize;
        let codes: Vec<u64> = (0..count)
            .map(|_| src.int_in(0, sys.total_buckets() - 1))
            .collect();
        for method in all_methods(src, &sys) {
            let mut out = vec![u64::MAX; codes.len()];
            method.device_of_batch(&codes, &mut out);
            for (&code, &dev) in codes.iter().zip(&out) {
                assert_eq!(
                    dev,
                    method.device_of_packed(code),
                    "{} on {sys} code {code}",
                    method.name()
                );
            }
        }
    }

    /// Packed enumeration produces byte-identical device histograms and
    /// per-device bucket sets as the legacy `Vec<u64>` scan.
    fn packed_enumeration_matches_vec_scan(src) {
        let sys = gen_system(src);
        let query = gen_query(src, &sys);
        for method in all_methods(src, &sys) {
            // Histogram via the packed loop (response_histogram) vs a
            // hand-rolled tuple loop.
            let packed_hist = response_histogram(method.as_ref(), &sys, &query);
            let mut tuple_hist = vec![0u64; sys.devices() as usize];
            let mut it = query.qualified_buckets(&sys);
            while let Some(bucket) = it.next_bucket() {
                tuple_hist[method.device_of(bucket) as usize] += 1;
            }
            assert_eq!(packed_hist, tuple_hist, "{} on {sys} query {query}", method.name());

            for device in 0..sys.devices() {
                let mut codes = Vec::new();
                for_each_device_code(method.as_ref(), &sys, &query, device, |c| codes.push(c));
                let legacy: Vec<u64> = scan_device_buckets(method.as_ref(), &sys, &query, device)
                    .iter()
                    .map(|b| sys.linear_index(b))
                    .collect();
                assert_eq!(
                    codes, legacy,
                    "{} on {sys} query {query} device {device}",
                    method.name()
                );
                assert_eq!(codes.len() as u64, packed_hist[device as usize]);
            }
        }
    }

    /// The FX fast inverse enumerates exactly the same per-device bucket
    /// sets as the generic packed scan.
    fn fx_fast_inverse_matches_scan(src) {
        let sys = gen_system(src);
        let strategy = [
            AssignmentStrategy::Basic,
            AssignmentStrategy::CycleIu1,
            AssignmentStrategy::CycleIu2,
        ][src.arm(3)];
        let fx = FxDistribution::with_strategy(sys.clone(), strategy)
            .unwrap_or_else(|_| FxDistribution::auto(sys.clone()).expect("auto always assigns"));
        let query = gen_query(src, &sys);
        let inv = FxInverse::new(&fx, &query);
        for device in 0..sys.devices() {
            let mut fast = Vec::new();
            inv.for_each_code_on(device, |c| fast.push(c));
            fast.sort_unstable();
            let mut scan = Vec::new();
            for_each_device_code(&fx, &sys, &query, device, |c| scan.push(c));
            scan.sort_unstable();
            assert_eq!(fast, scan, "{sys} query {query} device {device}");
        }
    }

    /// The dispatching executor (fast path), the forced generic scan, and
    /// the explicit FX executor return the same `ExecutionReport` content:
    /// records, histogram, and largest response.
    fn fx_executor_matches_generic_executor(src) {
        let sys = gen_system(src);
        // Keep the storage build small: re-draw oversized systems down to
        // a fixed shape would skew coverage, so just bound the records.
        let mut builder = Schema::builder();
        for (i, &size) in sys.field_sizes().iter().enumerate() {
            builder = builder.field(format!("f{i}"), FieldType::Int, size);
        }
        let schema = builder.devices(sys.devices()).build().expect("system is valid");
        let fx = FxDistribution::auto(sys.clone()).expect("auto always assigns");
        let mut file = DeclusteredFile::new(schema, fx, src.int_in(0, 1 << 16))
            .expect("schema system matches");
        let records = src.int_in(0, 200);
        for i in 0..records as i64 {
            let values: Vec<Value> =
                (0..sys.num_fields()).map(|f| Value::Int(i * 31 + f as i64)).collect();
            file.insert(Record::new(values)).expect("records type-check");
        }
        let query = gen_query(src, &sys);
        let cost = CostModel::main_memory();

        let auto = execute_parallel(&file, &query, &cost).expect("no corruption");
        let scan = execute_parallel_scan(&file, &query, &cost).expect("no corruption");
        let fx_exec = execute_parallel_fx(&file, &query, &cost).expect("no corruption");

        for other in [&scan, &fx_exec] {
            assert_eq!(auto.histogram(), other.histogram(), "{sys} query {query}");
            assert_eq!(auto.largest_response, other.largest_response);
        }
        let sorted = |r: &[Record]| {
            let mut v: Vec<String> = r.iter().map(|x| format!("{x}")).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&auto.records), sorted(&scan.records));
        assert_eq!(sorted(&auto.records), sorted(&fx_exec.records));
        // The dispatcher followed the cost heuristic: its address totals
        // match the explicit FX executor when the fast path pays, and the
        // M·|R(q)| scan when it does not.
        let total = |r: &pmr_storage::exec::ExecutionReport| {
            r.per_device.iter().map(|d| d.addresses_computed).sum::<u64>()
        };
        if fx_fast_path_pays_off(&sys, file.method(), &query) {
            assert_eq!(total(&auto), total(&fx_exec));
        } else {
            assert_eq!(total(&auto), total(&scan));
        }
        assert_eq!(total(&scan), sys.devices() * query.qualified_count_in(&sys));
    }
}
