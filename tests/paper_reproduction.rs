//! Integration tests pinning the reproduction to the paper's published
//! numbers (where the scanned text is legible; see EXPERIMENTS.md for the
//! rows with OCR damage).

use pmr::analysis::experiments::{self, Experiment};
use pmr::analysis::probability::{empirical_curves, figure_curves};

/// Table 7 (M = 32, F_i = 8): the Modulo and GDM1 columns and the
/// FX/Optimal columns as printed in the paper.
#[test]
fn table_7_columns_match_paper() {
    let table = experiments::table_response(Experiment::Table7).unwrap();
    let col = |name: &str| table.columns.iter().position(|c| c == name).unwrap();
    let modulo = col("Modulo");
    let gdm1 = col("GDM1");
    let gdm3 = col("GDM3");
    let fx = col("FX");

    let paper_modulo = [8.0, 48.0, 344.0, 2460.0, 18152.0];
    let paper_gdm1 = [3.3, 18.1, 130.5, 1026.3, 8196.0];
    let paper_gdm3 = [3.7, 18.9, 132.5, 1031.7, 8202.0];
    let paper_fx = [3.2, 16.0, 128.0, 1024.0, 8192.0];
    let paper_optimal = [2.0, 16.0, 128.0, 1024.0, 8192.0];

    for (i, row) in table.rows.iter().enumerate() {
        assert_eq!(row.k, (i + 2) as u32);
        assert!(
            (row.averages[modulo] - paper_modulo[i]).abs() < 0.05,
            "Modulo k={}",
            row.k
        );
        assert!(
            (row.averages[gdm1] - paper_gdm1[i]).abs() < 0.05,
            "GDM1 k={}",
            row.k
        );
        assert!(
            (row.averages[gdm3] - paper_gdm3[i]).abs() < 0.05,
            "GDM3 k={}",
            row.k
        );
        assert!(
            (row.averages[fx] - paper_fx[i]).abs() < 0.05,
            "FX k={}",
            row.k
        );
        assert!(
            (row.optimal - paper_optimal[i]).abs() < 0.05,
            "Optimal k={}",
            row.k
        );
    }
}

/// Table 8 (M = 64, F_i = 8): the legible check-values, including the one
/// row where FX loses to GDM ("except for first row of table 8 and 9, FX
/// gives smaller largest-response-size than the other methods").
#[test]
fn table_8_columns_match_paper() {
    let table = experiments::table_response(Experiment::Table8).unwrap();
    let col = |name: &str| table.columns.iter().position(|c| c == name).unwrap();
    let modulo = col("Modulo");
    let gdm1 = col("GDM1");
    let fx = col("FX");

    let paper_modulo = [8.0, 48.0, 344.0, 2460.0, 18152.0];
    let paper_fx = [2.4, 8.0, 64.0, 512.0, 4096.0];
    let paper_optimal = [1.0, 8.0, 64.0, 512.0, 4096.0];
    for (i, row) in table.rows.iter().enumerate() {
        assert!(
            (row.averages[modulo] - paper_modulo[i]).abs() < 0.05,
            "Modulo k={}",
            row.k
        );
        assert!(
            (row.averages[fx] - paper_fx[i]).abs() < 0.05,
            "FX k={}",
            row.k
        );
        assert!(
            (row.optimal - paper_optimal[i]).abs() < 0.05,
            "Optimal k={}",
            row.k
        );
    }
    // First row: GDM1 (2.1 in the paper) beats FX (2.4) — preserve the
    // crossover even if the exact decimal differs.
    let first = &table.rows[0];
    assert!(
        first.averages[gdm1] < first.averages[fx],
        "paper: GDM1 {} should beat FX {} at k = 2 on Table 8",
        first.averages[gdm1],
        first.averages[fx]
    );
}

/// Table 9 (M = 512, mixed field sizes): FX reaches the optimal column
/// from k = 5 up, and the Optimal column matches the paper's legible
/// entries exactly.
#[test]
fn table_9_matches_paper_shape() {
    let table = experiments::table_response(Experiment::Table9).unwrap();
    let col = |name: &str| table.columns.iter().position(|c| c == name).unwrap();
    let modulo = col("Modulo");
    let fx = col("FX");

    let paper_modulo = [9.6, 91.2, 911.2, 9076.0, 90404.0];
    let paper_optimal = [1.0, 3.15, 35.2, 384.0, 4096.0];
    for (i, row) in table.rows.iter().enumerate() {
        assert!(
            (row.averages[modulo] - paper_modulo[i]).abs() < 0.05,
            "Modulo k={}: {} vs {}",
            row.k,
            row.averages[modulo],
            paper_modulo[i]
        );
        assert!(
            (row.optimal - paper_optimal[i]).abs() < 0.05,
            "Optimal k={}",
            row.k
        );
    }
    // FX = optimal for k = 5, 6 (paper: 384.0 and 4096.0).
    assert!((table.rows[3].averages[fx] - 384.0).abs() < 0.05);
    assert!((table.rows[4].averages[fx] - 4096.0).abs() < 0.05);
}

/// Figures 1–4: the qualitative content — FX dominates MD everywhere, MD
/// collapses as every field becomes small, FX stays high.
#[test]
fn figures_reproduce_paper_shape() {
    for exp in [
        Experiment::Figure1,
        Experiment::Figure2,
        Experiment::Figure3,
        Experiment::Figure4,
    ] {
        let config = experiments::figure_config(exp);
        let curves = figure_curves(&config).unwrap();
        let n = config.num_fields;
        // Both start at 100%.
        assert_eq!(curves.md_percent[0], 100.0);
        assert_eq!(curves.fd_percent[0], 100.0);
        // FX dominates throughout.
        for i in 0..=n {
            assert!(
                curves.fd_percent[i] >= curves.md_percent[i] - 1e-9,
                "{exp:?} L={i}"
            );
        }
        // At L = n MD has collapsed, FX has not.
        assert!(
            curves.md_percent[n] < 40.0,
            "{exp:?}: MD {}",
            curves.md_percent[n]
        );
        assert!(
            curves.fd_percent[n] > curves.md_percent[n] + 20.0,
            "{exp:?}: FX {} vs MD {}",
            curves.fd_percent[n],
            curves.md_percent[n]
        );
    }
}

/// The beyond-paper empirical curves agree with the certified curves at
/// the endpoints and never fall below them.
#[test]
fn empirical_curves_envelope_certified() {
    for exp in [Experiment::Figure1, Experiment::Figure3] {
        let config = experiments::figure_config(exp);
        let certified = figure_curves(&config).unwrap();
        let empirical = empirical_curves(&config).unwrap();
        for i in 0..certified.l_values.len() {
            assert!(
                empirical.fd_percent[i] + 1e-9 >= certified.fd_percent[i],
                "{exp:?} L={i}"
            );
            assert!(
                empirical.md_percent[i] + 1e-9 >= certified.md_percent[i],
                "{exp:?} L={i}"
            );
        }
    }
}

/// Tables 1–6 render with the exact bucket counts of the paper's figures.
#[test]
fn distribution_tables_render_completely() {
    let expected_rows = [16usize, 16, 16, 16, 16, 16];
    let tables = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Table4,
        Experiment::Table5,
        Experiment::Table6,
    ];
    for (exp, rows) in tables.into_iter().zip(expected_rows) {
        let rendered = experiments::table_distribution(exp).unwrap();
        // title + header + separator + one line per bucket.
        assert_eq!(rendered.lines().count(), rows + 3, "{}", exp.label());
    }
}
