//! Smoke-runs the full `bench_all` suite in fast mode on every
//! `cargo test`: each group executes end-to-end with tiny workloads, the
//! emitted stats round-trip through the JSON-lines format, and every
//! expected `group/name` pair is present. This keeps the bench binaries
//! from rotting between (manual) baseline runs.

use pmr_bench::suite::{run_all, write_baselines, SuiteOpts};

/// The `pmr loadgen --check --cache` replay contract, in-process: a
/// 4-node cluster answers a seeded query mix with the identical
/// order-independent checksum whether the decoded-page cache is at its
/// default, disabled, or re-enabled at a small capacity — and every
/// variant matches the single-process batch executor over the same
/// queries.
#[test]
fn loadgen_replay_checksum_is_cache_invariant() {
    use pmr_core::{FxDistribution, SystemConfig};
    use pmr_mkh::{FieldType, Record, Schema, Value};
    use pmr_net::loadgen::{self, LoadgenOpts};
    use pmr_net::{Cluster, ClusterConfig};
    use pmr_storage::exec::{ExecPolicy, Executor};
    use pmr_storage::{CostModel, DeclusteredFile};

    let sys = SystemConfig::new(&[4; 4], 8).unwrap();
    let mut builder = Schema::builder();
    for (i, &size) in sys.field_sizes().iter().enumerate() {
        builder = builder.field(format!("f{i}"), FieldType::Int, size);
    }
    let schema = builder.devices(sys.devices()).build().unwrap();
    let mut file =
        DeclusteredFile::new(schema, FxDistribution::auto(sys.clone()).unwrap(), 7).unwrap();
    file.enable_mirroring();
    for i in 0..400i64 {
        let values: Vec<Value> = (0..sys.num_fields())
            .map(|f| Value::Int(i * 37 + f as i64))
            .collect();
        file.insert(Record::new(values)).unwrap();
    }

    let exec = Executor::new(&file, CostModel::main_memory());
    let cluster = Cluster::new(&file, CostModel::main_memory(), ClusterConfig::default());
    let queries = loadgen::query_mix(&sys, 32, 7, 2);
    let policy = ExecPolicy::default();
    let opts = LoadgenOpts {
        concurrency: 2,
        batch: 8,
        kill: None,
        watch: None,
    };

    // Cluster nodes share the devices by `Arc`, so one device-level
    // toggle covers all four nodes at once.
    let on = loadgen::run(&cluster, &queries, &policy, &opts).checksum;
    file.set_cache_capacity(0);
    let off = loadgen::run(&cluster, &queries, &policy, &opts).checksum;
    file.set_cache_capacity(64);
    let re_enabled = loadgen::run(&cluster, &queries, &policy, &opts).checksum;

    let local = exec.execute_batch(&queries, &policy);
    let expected = loadgen::reports_checksum(local.iter());
    assert_eq!(
        on, expected,
        "cache-on cluster run diverged from single-process"
    );
    assert_eq!(
        off, expected,
        "cache-off cluster run diverged from single-process"
    );
    assert_eq!(
        re_enabled, expected,
        "re-enabled cache diverged from single-process"
    );
}

/// Minimal JSON-lines sanity check: one object per line with the fields
/// the `pmr_rt::bench::Stats::to_json` schema promises. (No JSON parser
/// in-tree; the format is flat and machine-written, so field probes are
/// exact.)
fn assert_json_line(line: &str) {
    assert!(
        line.starts_with("{\"bench\":\""),
        "not a stats object: {line}"
    );
    assert!(line.ends_with('}'), "unterminated object: {line}");
    for key in [
        "\"bench\":",
        "\"iters\":",
        "\"median_ns\":",
        "\"p95_ns\":",
        "\"mean_ns\":",
        "\"min_ns\":",
        "\"max_ns\":",
        "\"checksum\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

#[test]
fn bench_all_fast_mode_produces_every_group() {
    let files = run_all(&SuiteOpts::smoke());
    assert_eq!(files.len(), 2);
    assert_eq!(files[0].name, "BENCH_core.json");
    assert_eq!(files[1].name, "BENCH_exec.json");

    let expected_core = [
        "addr_compute/modulo",
        "addr_compute/gdm1",
        "addr_compute/fx_basic",
        "addr_compute/fx_iu1",
        "addr_compute/fx_iu2",
        "addr_compute/random",
        "addr_compute/batched_modulo",
        "addr_compute/batched_gdm1",
        "addr_compute/batched_fx_basic",
        "addr_compute/batched_fx_iu1",
        "addr_compute/batched_fx_iu2",
        "transform_apply/identity",
        "transform_apply/u",
        "transform_apply/iu1",
        "transform_apply/iu2",
        "transform_invert/identity",
        "transform_invert/u",
        "transform_invert/iu1",
        "transform_invert/iu2",
        "inverse_mapping/fx_fast_all_devices",
        "inverse_mapping/generic_scan_all_devices",
        "packed_vs_vec/vec_scan_all_devices",
        "packed_vs_vec/packed_scan_all_devices",
        "packed_vs_vec/packed_fx_fast_all_devices",
        "ec/encode_4_2",
        "ec/decode_4_2",
        "ec/reconstruct_4_2",
    ];
    let expected_exec = [
        "bulk_insert/fx_auto",
        "bulk_insert/modulo",
        "bulk_insert/batched",
        "query_exec/fx_generic_executor",
        "query_exec/fx_fast_executor",
        "query_exec/modulo_generic_executor",
        "query_exec/fx_serial_reference",
        "exec_fast_path/dispatch_narrow",
        "exec_fast_path/scan_narrow",
        "exec_fast_path/dispatch_wide",
        "exec_fast_path/scan_wide",
        "obs_overhead/atomic_load_floor",
        "obs_overhead/span_disabled",
        "obs_overhead/counter_disabled",
        "obs_overhead/span_enabled_memory",
        "obs_overhead/counter_enabled_memory",
        "fault_overhead/read_bucket_baseline",
        "fault_overhead/read_attempt_no_plan",
        "fault_overhead/read_attempt_plan_installed",
        "fault_overhead/strict_dispatch",
        "fault_overhead/policy_no_faults",
        "fault_overhead/read_parity_no_fault",
        "read_path/hot_cached",
        "read_path/cold",
        "read_path/cache_off",
        "throughput/resident_batch_1",
        "throughput/spawn_per_query_1",
        "throughput/serial_1",
        "throughput/resident_batch_16",
        "throughput/spawn_per_query_16",
        "throughput/serial_16",
        "throughput/resident_batch_256",
        "throughput/spawn_per_query_256",
        "throughput/serial_256",
        // smoke mode scales the serve batch from 256 down to 8
        "serve/cluster4_batch_8",
        "serve/single_process_batch_8",
        "serve/wire_encode_response_8",
        "serve/wire_decode_response_8",
        "serve/obs_overhead_off_8",
        "serve/obs_overhead_on_8",
    ];
    for (file, expected) in files.iter().zip([&expected_core[..], &expected_exec[..]]) {
        let names: Vec<&str> = file.stats.iter().map(|s| s.bench.as_str()).collect();
        assert_eq!(names, expected.to_vec(), "{} group set changed", file.name);
        for s in &file.stats {
            assert_json_line(&s.to_json());
            assert!(s.median_ns.is_finite() && s.median_ns >= 0.0);
        }
    }

    // Every batched addr_compute bench checksums identically to its
    // scalar counterpart: the lane kernels are bit-equal to the per-record
    // path (ISSUE: batched address computation changes no placements).
    let core = |name: &str| -> u64 {
        files[0]
            .stats
            .iter()
            .find(|s| s.bench == format!("addr_compute/{name}"))
            .expect("group present")
            .checksum
    };
    for pair in ["modulo", "gdm1", "fx_basic", "fx_iu1", "fx_iu2"] {
        assert_eq!(
            core(pair),
            core(&format!("batched_{pair}")),
            "addr_compute/{pair}"
        );
    }

    // The streaming batched bulk insert places every record exactly where
    // the serial path does: identical occupancy checksum.
    let bi = |name: &str| -> u64 {
        files[1]
            .stats
            .iter()
            .find(|s| s.bench == format!("bulk_insert/{name}"))
            .expect("group present")
            .checksum
    };
    assert_eq!(bi("batched"), bi("fx_auto"));

    // All three packed_vs_vec variants count the same qualified buckets.
    let pvv: Vec<u64> = files[0]
        .stats
        .iter()
        .filter(|s| s.bench.starts_with("packed_vs_vec/"))
        .map(|s| s.checksum)
        .collect();
    assert_eq!(pvv, vec![512, 512, 512]);

    // The fault hook without a plan is a pure pass-through, and the
    // fault-aware executor without faults reproduces the strict
    // dispatcher (ISSUE: disabled faults change nothing).
    let fo = |name: &str| -> u64 {
        files[1]
            .stats
            .iter()
            .find(|s| s.bench == format!("fault_overhead/{name}"))
            .expect("group present")
            .checksum
    };
    assert_eq!(fo("read_bucket_baseline"), fo("read_attempt_no_plan"));
    assert_eq!(fo("strict_dispatch"), fo("policy_no_faults"));
    // A parity-protected file without faults answers identically to the
    // unprotected one (ISSUE: parity never changes fault-free results).
    assert_eq!(fo("policy_no_faults"), fo("read_parity_no_fault"));

    // The decoded-page cache never changes what a read returns: hot
    // (all hits), thrashing (capacity 1), and disabled reads of the same
    // buckets count the identical records (ISSUE: the cache is purely a
    // wall-clock optimisation).
    let rp = |name: &str| -> u64 {
        files[1]
            .stats
            .iter()
            .find(|s| s.bench == format!("read_path/{name}"))
            .expect("group present")
            .checksum
    };
    assert_eq!(rp("hot_cached"), rp("cache_off"));
    assert_eq!(rp("cold"), rp("cache_off"));

    // The RS decode fast path and the 2-losses reconstruction both
    // recover the byte-identical page (same length checksum per iter).
    let ec = |name: &str| -> u64 {
        files[0]
            .stats
            .iter()
            .find(|s| s.bench == format!("ec/{name}"))
            .expect("group present")
            .checksum
    };
    assert_eq!(ec("decode_4_2"), ec("reconstruct_4_2"));

    // At each batch size the resident batch, spawn-per-query, and serial
    // throughput variants answer the same queries: identical record
    // totals (ISSUE: batch path is a pure throughput optimisation).
    let tp = |name: &str| -> u64 {
        files[1]
            .stats
            .iter()
            .find(|s| s.bench == format!("throughput/{name}"))
            .expect("group present")
            .checksum
    };
    for batch in [1, 16, 256] {
        let resident = tp(&format!("resident_batch_{batch}"));
        assert_eq!(
            resident,
            tp(&format!("spawn_per_query_{batch}")),
            "batch {batch}"
        );
        assert_eq!(resident, tp(&format!("serial_{batch}")), "batch {batch}");
    }

    // The 4-node cluster gathers bit-equal results to the single-process
    // executor on the same batch (ISSUE: the wire adds zero drift).
    let sv = |name: &str| -> u64 {
        files[1]
            .stats
            .iter()
            .find(|s| s.bench == format!("serve/{name}"))
            .expect("group present")
            .checksum
    };
    assert_eq!(sv("cluster4_batch_8"), sv("single_process_batch_8"));

    // Cluster telemetry changes what's OBSERVED, never what's ANSWERED:
    // the serve path returns identical records with tracing off and
    // fully on (ISSUE: obs-enabled vs disabled is overhead, not drift).
    assert_eq!(sv("obs_overhead_off_8"), sv("cluster4_batch_8"));
    assert_eq!(sv("obs_overhead_on_8"), sv("cluster4_batch_8"));

    // Baseline files write as valid JSON lines.
    let dir = std::env::temp_dir().join("pmr_bench_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let written = write_baselines(&files, &dir).unwrap();
    assert_eq!(written.len(), 2);
    for path in written {
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert!(!lines.is_empty());
        for line in lines {
            assert_json_line(line);
        }
    }
}
