//! The observability contract, end to end through the storage stack:
//!
//! 1. With tracing off, an executor run records **zero** events — the
//!    disabled path is inert, not merely unflushed.
//! 2. With tracing on, `execute_parallel` emits exactly one
//!    `exec.device` span per device, each tagged with a distinct device.
//! 3. A file-sink trace round-trips: the JSON lines parse through the
//!    same aggregator `pmr stats` uses, and the aggregate agrees with
//!    the report's own `TraceSummary`.
//!
//! The obs layer is global process state, so every test takes `lock()`.

use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_rt::obs::{self, agg::TraceStats, Event, TraceConfig};
use pmr_storage::exec::execute_parallel;
use pmr_storage::{CostModel, DeclusteredFile};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DEVICES: u64 = 8;

/// A small FX-declustered file: 3 fields over 8 devices, 600 records.
fn fixture() -> DeclusteredFile<pmr_core::FxDistribution> {
    let schema = Schema::builder()
        .field("a", FieldType::Int, 16)
        .field("b", FieldType::Int, 8)
        .field("c", FieldType::Int, 8)
        .devices(DEVICES)
        .build()
        .unwrap();
    let sys = schema.system().clone();
    let fx = pmr_core::FxDistribution::auto(sys).unwrap();
    let mut file = DeclusteredFile::new(schema, fx, 5).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Int(i * 17 % 101),
                Value::Int(i * 29 % 53),
            ])
        })
        .collect();
    file.insert_all(records).unwrap();
    file
}

#[test]
fn disabled_tracing_records_zero_events() {
    let _guard = lock();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();

    assert!(report.trace.is_none(), "no capture when tracing is off");
    assert_eq!(obs::spans_recorded(), 0, "no spans recorded");
    assert!(obs::counters_snapshot().is_empty(), "no counters touched");
    assert!(obs::drain_events().is_empty(), "no events emitted");
    assert!(report.largest_response > 0, "the run itself still works");
}

/// The batched-dispatch counters: a traced `insert_all_parallel` records
/// every record under `insert.batched_records` and at least one
/// `addr.batch_calls` per routed chunk, so `pmr stats` can show the
/// batched vs scalar dispatch mix.
#[test]
fn batched_insert_counters_record_dispatch_mix() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let schema = Schema::builder()
        .field("a", FieldType::Int, 16)
        .field("b", FieldType::Int, 8)
        .field("c", FieldType::Int, 8)
        .devices(DEVICES)
        .build()
        .unwrap();
    let fx = pmr_core::FxDistribution::auto(schema.system().clone()).unwrap();
    let mut file = DeclusteredFile::new(schema, fx, 5).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Int(i * 17 % 101),
                Value::Int(i * 29 % 53),
            ])
        })
        .collect();
    file.insert_all_parallel(records).unwrap();

    let batched = obs::counter_total("insert.batched_records");
    let calls = obs::counter_total("addr.batch_calls");
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert_eq!(batched, 600, "every record routed through the batched path");
    assert!(calls >= 1, "each routed chunk counts one device_of_batch call");
}

#[test]
fn traced_run_emits_one_device_span_per_device() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    let events = obs::drain_events();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let device_spans: Vec<&obs::SpanEvent> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span(s) if s.name == "exec.device" => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(device_spans.len() as u64, DEVICES, "one exec.device span per device");

    let mut devices: Vec<u64> = device_spans
        .iter()
        .map(|s| {
            s.attrs
                .iter()
                .find(|(k, _)| k == "device")
                .expect("exec.device span carries a device attr")
                .1
        })
        .collect();
    devices.sort_unstable();
    assert_eq!(devices, (0..DEVICES).collect::<Vec<u64>>(), "each device exactly once");

    // The report's summary saw the same run.
    let trace = report.trace.expect("capture attached while tracing");
    assert!(trace.spans >= DEVICES, "summary counts at least the device spans");
    assert_eq!(trace.counter("exec.fast_path.dispatched"), 1);
    assert!(trace.counter("exec.addresses_computed") > 0);
}

#[test]
fn file_trace_round_trips_through_the_aggregator() {
    let _guard = lock();
    let path = std::env::temp_dir()
        .join(format!("pmr-obs-contract-{}.jsonl", std::process::id()));
    obs::install(TraceConfig::File(path.clone())).unwrap();
    obs::reset();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    obs::flush();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let stats = TraceStats::from_lines(&text).expect("trace file parses");

    // Per-device aggregation matches the executor's fan-out.
    let per_device: Vec<u64> = stats
        .by_device
        .keys()
        .filter(|(name, _)| name == "exec.device")
        .map(|&(_, device)| device)
        .collect();
    assert_eq!(per_device, (0..DEVICES).collect::<Vec<u64>>());
    let exec_device = stats.spans.get("exec.device").expect("exec.device aggregated");
    assert_eq!(exec_device.count, DEVICES);

    // Flushed counter totals agree with the report's own summary.
    let trace = report.trace.expect("capture attached while tracing");
    for name in ["exec.fast_path.dispatched", "exec.addresses_computed", "exec.qualified_buckets"]
    {
        assert_eq!(
            stats.counters.get(name).copied().unwrap_or(0),
            trace.counter(name),
            "counter {name} must round-trip"
        );
    }
    // The file carries every span the summary counted (plus the
    // enclosing exec.query span, which closes after the capture).
    let file_spans: u64 = stats.spans.values().map(|s| s.count).sum();
    assert!(file_spans >= trace.spans, "{file_spans} file spans < {} summary", trace.spans);
}
