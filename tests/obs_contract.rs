//! The observability contract, end to end through the storage stack:
//!
//! 1. With tracing off, an executor run records **zero** events — the
//!    disabled path is inert, not merely unflushed.
//! 2. With tracing on, `execute_parallel` emits exactly one
//!    `exec.device` span per device, each tagged with a distinct device.
//! 3. A file-sink trace round-trips: the JSON lines parse through the
//!    same aggregator `pmr stats` uses, and the aggregate agrees with
//!    the report's own `TraceSummary`.
//!
//! The obs layer is global process state, so every test takes `lock()`.

use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_net::{loadgen, Cluster, ClusterConfig, FrontendConfig};
use pmr_rt::obs::{self, agg::TraceStats, Event, TraceConfig};
use pmr_storage::exec::{execute_parallel, ExecPolicy};
use pmr_storage::{CostModel, DeclusteredFile};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DEVICES: u64 = 8;

/// A small FX-declustered file: 3 fields over 8 devices, 600 records.
fn fixture() -> DeclusteredFile<pmr_core::FxDistribution> {
    let schema = Schema::builder()
        .field("a", FieldType::Int, 16)
        .field("b", FieldType::Int, 8)
        .field("c", FieldType::Int, 8)
        .devices(DEVICES)
        .build()
        .unwrap();
    let sys = schema.system().clone();
    let fx = pmr_core::FxDistribution::auto(sys).unwrap();
    let mut file = DeclusteredFile::new(schema, fx, 5).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Int(i * 17 % 101),
                Value::Int(i * 29 % 53),
            ])
        })
        .collect();
    file.insert_all(records).unwrap();
    file
}

#[test]
fn disabled_tracing_records_zero_events() {
    let _guard = lock();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();

    assert!(report.trace.is_none(), "no capture when tracing is off");
    assert_eq!(obs::spans_recorded(), 0, "no spans recorded");
    assert!(obs::counters_snapshot().is_empty(), "no counters touched");
    assert!(obs::drain_events().is_empty(), "no events emitted");
    assert!(report.largest_response > 0, "the run itself still works");
}

/// The batched-dispatch counters: a traced `insert_all_parallel` records
/// every record under `insert.batched_records` and at least one
/// `addr.batch_calls` per routed chunk, so `pmr stats` can show the
/// batched vs scalar dispatch mix.
#[test]
fn batched_insert_counters_record_dispatch_mix() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let schema = Schema::builder()
        .field("a", FieldType::Int, 16)
        .field("b", FieldType::Int, 8)
        .field("c", FieldType::Int, 8)
        .devices(DEVICES)
        .build()
        .unwrap();
    let fx = pmr_core::FxDistribution::auto(schema.system().clone()).unwrap();
    let mut file = DeclusteredFile::new(schema, fx, 5).unwrap();
    let records: Vec<Record> = (0..600)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Int(i * 17 % 101),
                Value::Int(i * 29 % 53),
            ])
        })
        .collect();
    file.insert_all_parallel(records).unwrap();

    let batched = obs::counter_total("insert.batched_records");
    let calls = obs::counter_total("addr.batch_calls");
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert_eq!(batched, 600, "every record routed through the batched path");
    assert!(
        calls >= 1,
        "each routed chunk counts one device_of_batch call"
    );
}

#[test]
fn traced_run_emits_one_device_span_per_device() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    let events = obs::drain_events();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let device_spans: Vec<&obs::SpanEvent> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span(s) if s.name == "exec.device" => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(
        device_spans.len() as u64,
        DEVICES,
        "one exec.device span per device"
    );

    let mut devices: Vec<u64> = device_spans
        .iter()
        .map(|s| {
            s.attrs
                .iter()
                .find(|(k, _)| k == "device")
                .expect("exec.device span carries a device attr")
                .1
        })
        .collect();
    devices.sort_unstable();
    assert_eq!(
        devices,
        (0..DEVICES).collect::<Vec<u64>>(),
        "each device exactly once"
    );

    // The report's summary saw the same run.
    let trace = report.trace.expect("capture attached while tracing");
    assert!(
        trace.spans >= DEVICES,
        "summary counts at least the device spans"
    );
    assert_eq!(trace.counter("exec.fast_path.dispatched"), 1);
    assert!(trace.counter("exec.addresses_computed") > 0);
}

#[test]
fn file_trace_round_trips_through_the_aggregator() {
    let _guard = lock();
    let path = std::env::temp_dir().join(format!("pmr-obs-contract-{}.jsonl", std::process::id()));
    obs::install(TraceConfig::File(path.clone())).unwrap();
    obs::reset();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let report = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    obs::flush();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let stats = TraceStats::from_lines(&text).expect("trace file parses");

    // Per-device aggregation matches the executor's fan-out.
    let per_device: Vec<u64> = stats
        .by_device
        .keys()
        .filter(|(name, _)| name == "exec.device")
        .map(|&(_, device)| device)
        .collect();
    assert_eq!(per_device, (0..DEVICES).collect::<Vec<u64>>());
    let exec_device = stats
        .spans
        .get("exec.device")
        .expect("exec.device aggregated");
    assert_eq!(exec_device.count, DEVICES);

    // Flushed counter totals agree with the report's own summary.
    let trace = report.trace.expect("capture attached while tracing");
    for name in [
        "exec.fast_path.dispatched",
        "exec.addresses_computed",
        "exec.qualified_buckets",
    ] {
        assert_eq!(
            stats.counters.get(name).copied().unwrap_or(0),
            trace.counter(name),
            "counter {name} must round-trip"
        );
    }
    // The file carries every span the summary counted (plus the
    // enclosing exec.query span, which closes after the capture).
    let file_spans: u64 = stats.spans.values().map(|s| s.count).sum();
    assert!(
        file_spans >= trace.spans,
        "{file_spans} file spans < {} summary",
        trace.spans
    );
}

// -----------------------------------------------------------------
// Decoded-page cache contract: the `cache.*` counters account for
// every bucket read when the cache is on, and stay silent when it is
// disabled.
// -----------------------------------------------------------------

/// Capacity 0 means OFF and *silent*: a full traced run records no
/// `cache.hit`, `cache.miss`, `cache.evicted`, or `cache.invalidated`
/// events at all — disabled is inert, not merely cold.
#[test]
fn disabled_cache_records_zero_cache_events() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let mut file = fixture();
    file.set_cache_capacity(0);
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let _ = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    let _ = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    file.insert(Record::new(vec![
        Value::Int(1),
        Value::Int(2),
        Value::Int(3),
    ]))
    .unwrap();

    let counters = obs::counters_snapshot();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    for (name, total) in counters {
        assert!(
            !name.starts_with("cache."),
            "cache counter {name} = {total} fired with the cache disabled"
        );
    }
}

/// With the cache enabled and no faults, every bucket read is accounted
/// exactly once: `cache.hit + cache.miss` equals the devices' own
/// bucket-read tally, a repeat query hits, and the simulated report is
/// identical hot and cold (the clock still charges full accesses).
#[test]
fn cache_hits_plus_misses_account_for_every_bucket_read() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let reads_before: u64 = file.devices().iter().map(|d| d.bucket_reads()).sum();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let cold = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    let hits_cold = obs::counter_total("cache.hit");
    let hot = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();

    let reads: u64 = file.devices().iter().map(|d| d.bucket_reads()).sum::<u64>() - reads_before;
    let hits = obs::counter_total("cache.hit");
    let misses = obs::counter_total("cache.miss");
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert_eq!(hits + misses, reads, "every bucket read is a hit or a miss");
    assert_eq!(hits_cold, 0, "first pass over a fresh fixture cannot hit");
    assert!(hits > 0, "the repeat query reads through the warm cache");
    assert_eq!(
        cold.histogram(),
        hot.histogram(),
        "hot and cold answer identically"
    );
    assert_eq!(
        cold.simulated_response_us, hot.simulated_response_us,
        "cache hits still charge full simulated bucket accesses"
    );
}

/// An append to a cached bucket invalidates its page: the write counts
/// `cache.invalidated`, and the next read of that bucket is a miss that
/// sees the new record.
#[test]
fn append_invalidates_the_cached_page() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let query = file.query(&[("b", Value::Int(7))]).unwrap();
    let before = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    let invalidated_before = obs::counter_total("cache.invalidated");

    // Route one matching record through the file: its bucket was just
    // cached by the query above, so the append must drop that page.
    let mut file = file;
    file.insert(Record::new(vec![
        Value::Int(3),
        Value::Int(7),
        Value::Int(11),
    ]))
    .unwrap();
    let invalidated = obs::counter_total("cache.invalidated");
    let after = execute_parallel(&file, &query, &CostModel::main_memory()).unwrap();
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert!(
        invalidated > invalidated_before,
        "appending to a cached bucket must count an invalidation"
    );
    assert_eq!(
        after.records.len(),
        before.records.len() + 1,
        "the re-read sees the appended record, not the stale page"
    );
}

// -----------------------------------------------------------------
// Cluster telemetry contract: the `net.*` counters and the merged
// `node{N}.*` names, end to end through the v1.1 wire protocol.
// -----------------------------------------------------------------

/// A healthy traced cluster round-trip: every scatter is answered, the
/// frontend's `net.*` counters balance, each node's shipped telemetry
/// lands under its `node{N}.` prefix, and the merged per-node `busy_us`
/// histograms reconcile bucket-for-bucket with the frontend's own
/// `net.node_rt_us` observations — both sides bucket the identical wire
/// value with the identical bounds.
#[test]
fn cluster_round_trip_merges_node_telemetry() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let cluster = Cluster::new(&file, CostModel::main_memory(), ClusterConfig::default());
    let sys = file.system().clone();
    let policy = ExecPolicy::default();
    let queries = loadgen::query_mix(&sys, 3, 3, 2);
    let batches = 4u64;
    let nodes = cluster.nodes() as u64;
    for _ in 0..batches {
        let _ = cluster.frontend().execute_batch(&queries, &policy);
    }

    let attribution = cluster.frontend().attribution();
    let requests = obs::counter_total("net.requests");
    let responses = obs::counter_total("net.responses");
    let timeouts = obs::counter_total("net.timeouts");
    let late = obs::counter_total("net.late_responses");
    let node_decode_errors = obs::counter_total("net.node.decode_errors");
    let frontend_rt = obs::histogram_counts("net.node_rt_us").expect("frontend hist exists");
    let merged: Vec<(u64, u64, Option<Vec<u64>>)> = (0..nodes)
        .map(|i| {
            (
                obs::counter_total(&format!("node{i}.requests")),
                obs::counter_total(&format!("node{i}.queries")),
                obs::histogram_counts(&format!("node{i}.busy_us")).map(|(_, c)| c),
            )
        })
        .collect();
    drop(cluster);
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert_eq!(requests, batches * nodes, "one scatter per node per batch");
    assert_eq!(
        responses, requests,
        "a healthy cluster answers every scatter"
    );
    assert_eq!(timeouts, 0);
    assert_eq!(late, 0);
    assert_eq!(node_decode_errors, 0);

    let mut merged_busy_total = vec![0u64; frontend_rt.1.len()];
    for (i, (node_requests, node_queries, busy)) in merged.iter().enumerate() {
        assert_eq!(
            *node_requests, batches,
            "node{i}.requests counts its scatters"
        );
        assert_eq!(
            *node_queries,
            batches * queries.len() as u64,
            "node{i}.queries"
        );
        let busy = busy
            .as_ref()
            .unwrap_or_else(|| panic!("node{i}.busy_us hist merged"));
        assert_eq!(
            busy.iter().sum::<u64>(),
            batches,
            "one busy_us sample per response"
        );
        // The merged wire histogram IS the frontend's local attribution
        // histogram: same value, same bounds, bucket for bucket.
        assert_eq!(
            busy, &attribution[i].busy_hist,
            "node{i} busy_us reconciles"
        );
        assert_eq!(attribution[i].merged_requests, batches);
        for (acc, b) in merged_busy_total.iter_mut().zip(busy) {
            *acc += b;
        }
    }
    assert_eq!(
        merged_busy_total, frontend_rt.1,
        "summed node{{N}}.busy_us must equal the frontend's net.node_rt_us histogram"
    );
}

/// A killed node under a short deadline surfaces as `net.timeouts` (and
/// eventually `net.late_responses` never fires — the node is silent);
/// the frontend keeps answering and the counters say why coverage fell.
#[test]
fn killed_node_counts_timeouts() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let cfg = ClusterConfig {
        nodes: 2,
        frontend: FrontendConfig {
            deadline: Duration::from_millis(40),
            down_after: 0,
        },
        net_faults: None,
    };
    let cluster = Cluster::new(&file, CostModel::main_memory(), cfg);
    let queries = loadgen::query_mix(&file.system().clone(), 2, 9, 2);
    cluster.kill_node(1);
    let _ = cluster
        .frontend()
        .execute_batch(&queries, &ExecPolicy::default());

    let timeouts = obs::counter_total("net.timeouts");
    let responses = obs::counter_total("net.responses");
    let merged_dead = obs::counter_total("node1.requests");
    drop(cluster);
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();

    assert!(timeouts >= 1, "the killed node must cost a gather deadline");
    assert!(responses >= 1, "the surviving node still answers");
    assert_eq!(merged_dead, 0, "a silent node ships no telemetry to merge");
}

/// A frame the node cannot decode bumps `net.node.decode_errors` — the
/// node-side counter rides the shared registry, so a `pmr stats` over a
/// node trace explains every dropped frame.
#[test]
fn undecodable_frame_counts_a_node_decode_error() {
    use pmr_net::transport::mem_pair;
    use pmr_net::wire::{encode_message, Message};
    use pmr_storage::exec::Executor;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let exec = Executor::new(&file, CostModel::main_memory());
    let (mut frontend_end, node_end) = mem_pair();
    let handle = pmr_net::node::spawn(
        0,
        file.system().clone(),
        exec,
        node_end,
        Arc::new(AtomicBool::new(false)),
        None,
    );
    frontend_end
        .tx
        .send_frame(b"definitely not a PMRN frame")
        .unwrap();
    frontend_end
        .tx
        .send_frame(&encode_message(&Message::Shutdown))
        .unwrap();
    handle.join().unwrap();

    let decode_errors = obs::counter_total("net.node.decode_errors");
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();
    assert_eq!(
        decode_errors, 1,
        "one garbage frame, one counted decode error"
    );
}

/// With a zero gather deadline every response arrives after its request
/// was abandoned: the collector counts them as `net.late_responses`
/// instead of silently dropping evidence.
#[test]
fn abandoned_responses_count_as_late() {
    let _guard = lock();
    obs::install(TraceConfig::Memory).unwrap();
    obs::reset();
    obs::drain_events();

    let file = fixture();
    let cfg = ClusterConfig {
        nodes: 2,
        frontend: FrontendConfig {
            deadline: Duration::ZERO,
            down_after: 0,
        },
        net_faults: None,
    };
    let cluster = Cluster::new(&file, CostModel::main_memory(), cfg);
    let queries = loadgen::query_mix(&file.system().clone(), 2, 9, 2);
    let _ = cluster
        .frontend()
        .execute_batch(&queries, &ExecPolicy::default());

    // The nodes still execute and answer; give the collectors a moment
    // to route the now-orphaned responses before reading the counter.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut late = obs::counter_total("net.late_responses");
    while late == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        late = obs::counter_total("net.late_responses");
    }
    drop(cluster);
    obs::install(TraceConfig::Off).unwrap();
    obs::reset();
    assert!(
        late >= 1,
        "an orphaned response must be counted, not vanish"
    );
}
