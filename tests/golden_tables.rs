//! Golden tests: the complete device columns of the paper's Tables 1–6,
//! checked through the rendering pipeline (`pmr-analysis`), cell for cell.
//!
//! The unit tests in `pmr-core` verify the same numbers through
//! `device_of` directly; this file pins the *rendered* output a user of
//! the regenerator binaries actually sees.

use pmr::analysis::experiments::{table_distribution, Experiment};

/// Parses a rendered distribution table into rows of whitespace-split
/// cells (skipping title, header, separator).
fn rows(exp: Experiment) -> Vec<Vec<String>> {
    let rendered = table_distribution(exp).expect("static experiment config");
    rendered
        .lines()
        .skip(3)
        .map(|l| l.split_whitespace().map(str::to_owned).collect())
        .collect()
}

fn devices(exp: Experiment, column: usize) -> Vec<u64> {
    rows(exp)
        .iter()
        .map(|r| r[column].parse().expect("device cells are integers"))
        .collect()
}

/// Table 1 (Basic FX, F = (2, 8), M = 4): paper's Device No column,
/// reading the 16 rows top to bottom.
#[test]
fn table_1_device_column() {
    assert_eq!(
        devices(Experiment::Table1, 2),
        vec![0, 1, 2, 3, 0, 1, 2, 3, 1, 0, 3, 2, 1, 0, 3, 2]
    );
}

/// Table 2 (I+U vs Modulo, F = (4, 4), M = 16): both device columns.
#[test]
fn table_2_device_columns() {
    let fx = devices(Experiment::Table2, 2);
    let modulo = devices(Experiment::Table2, 3);
    assert_eq!(
        fx,
        vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
    );
    assert_eq!(modulo, vec![0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6]);
}

/// Table 3 (I+IU1, F = (4, 4), M = 16).
#[test]
fn table_3_device_column() {
    assert_eq!(
        devices(Experiment::Table3, 2),
        vec![0, 5, 10, 15, 1, 4, 11, 14, 2, 7, 8, 13, 3, 6, 9, 12]
    );
}

/// Table 4 (I, U, IU1 on F = (2, 4, 2), M = 8).
#[test]
fn table_4_device_column() {
    assert_eq!(
        devices(Experiment::Table4, 3),
        vec![0, 5, 2, 7, 4, 1, 6, 3, 1, 4, 3, 6, 5, 0, 7, 2]
    );
}

/// Table 5 (I+IU2, F = (8, 2), M = 16).
#[test]
fn table_5_device_column() {
    assert_eq!(
        devices(Experiment::Table5, 2),
        vec![0, 13, 1, 12, 2, 15, 3, 14, 4, 9, 5, 8, 6, 11, 7, 10]
    );
}

/// Table 6 (I, U, IU2 on F = (4, 2, 2), M = 16).
#[test]
fn table_6_device_column() {
    assert_eq!(
        devices(Experiment::Table6, 3),
        vec![0, 13, 8, 5, 1, 12, 9, 4, 2, 15, 10, 7, 3, 14, 11, 6]
    );
}

/// Field-value columns render in binary with the field's full width, in
/// odometer order (first field slowest) — the paper's row order.
#[test]
fn field_columns_are_binary_odometer() {
    let rows = rows(Experiment::Table1);
    assert_eq!(rows.len(), 16);
    assert_eq!(rows[0][0], "0");
    assert_eq!(rows[0][1], "000");
    assert_eq!(rows[7][1], "111");
    assert_eq!(rows[8][0], "1");
    assert_eq!(rows[8][1], "000");
}
