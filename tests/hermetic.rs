//! Hermetic-build guard: the workspace must have **zero** registry
//! dependencies.
//!
//! Every crate builds from path dependencies only (the `pmr-*` crates and
//! the standard library); anything else would break the offline build.
//! This test walks every `Cargo.toml` in the workspace and fails on any
//! dependency that is not a path/workspace dependency, so a stray
//! `cargo add` shows up as a test failure rather than a resolution error
//! on the next offline machine.

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml files in the workspace: the root manifest plus one per
/// crate under `crates/`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 8,
        "expected the root + 7 crates, found {manifests:?}"
    );
    manifests
}

/// `true` for section headers that declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// `true` when the dependency line resolves locally: a `path = "..."`
/// table, or `workspace = true` inheritance (resolved against the root's
/// `[workspace.dependencies]`, which this test also checks).
fn is_local_dependency(spec: &str) -> bool {
    spec.contains("path") && spec.contains('=') || spec.contains("workspace = true")
}

#[test]
fn all_dependencies_are_path_or_workspace() {
    let mut offenders = Vec::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
        let mut section = String::new();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = header.trim().to_string();
                continue;
            }
            if !is_dependency_section(&section) {
                continue;
            }
            let Some((name, spec)) = line.split_once('=') else {
                continue;
            };
            let (name, spec) = (name.trim(), spec.trim());
            // Dotted-key inheritance form: `dep.workspace = true`.
            let dotted_workspace = name.ends_with(".workspace") && spec == "true";
            if !dotted_workspace && !is_local_dependency(spec) {
                offenders.push(format!(
                    "{}: [{}] {} = {}",
                    manifest.display(),
                    section,
                    name,
                    spec
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "non-path dependencies found (the build must stay hermetic):\n{}",
        offenders.join("\n")
    );
}

/// The foundation crate carries the whole runtime — including the
/// `pmr_rt::obs` tracing/metrics subsystem — on the standard library
/// alone. Its `[dependencies]` section must stay literally empty: obs is
/// exactly the kind of feature that tends to pull in `tracing`/`serde`,
/// and this pins it to zero dependencies of any kind (even in-workspace
/// ones, which would invert the layering).
#[test]
fn rt_has_no_dependencies_at_all() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/rt/Cargo.toml");
    let text = fs::read_to_string(&manifest).expect("rt manifest readable");
    let mut section = String::new();
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = header.trim().to_string();
            continue;
        }
        if is_dependency_section(&section) {
            deps.push(format!("[{section}] {line}"));
        }
    }
    assert!(
        deps.is_empty(),
        "pmr-rt must stay dependency-free (std only), found:\n{}",
        deps.join("\n")
    );
}

/// The network layer is where external crates usually sneak in (tokio,
/// serde, bincode, bytes, …). pmr-net must stay on `std` plus the
/// workspace's own crates: every dependency is an in-workspace `pmr-*`
/// crate, and its only feature (`tcp`) pulls in no dependency at all —
/// `std::net` covers loopback TCP.
#[test]
fn net_is_hermetic_std_only() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/net/Cargo.toml");
    let text = fs::read_to_string(&manifest).expect("net manifest readable");
    let mut section = String::new();
    let mut offenders = Vec::new();
    let mut pmr_deps = 0;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = header.trim().to_string();
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let (name, spec) = (name.trim(), spec.trim());
        if is_dependency_section(&section) {
            let name = name.trim_end_matches(".workspace");
            if name.starts_with("pmr-") {
                pmr_deps += 1;
            } else {
                offenders.push(format!("[{section}] {name} = {spec}"));
            }
        }
        if section == "features" && name == "tcp" {
            assert_eq!(spec, "[]", "the tcp feature must not enable any dependency");
        }
    }
    assert!(
        pmr_deps >= 4,
        "pmr-net should depend on the pmr-* stack, found {pmr_deps}"
    );
    assert!(
        offenders.is_empty(),
        "pmr-net must stay std-only (no external deps, ever):\n{}",
        offenders.join("\n")
    );
}

/// The six dependencies pmr-rt replaced must never come back by name.
#[test]
fn replaced_dependencies_stay_gone() {
    const BANNED: [&str; 6] = [
        "rand",
        "proptest",
        "criterion",
        "crossbeam",
        "parking_lot",
        "bytes",
    ];
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest).expect("manifest readable");
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            let Some((name, _)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim().trim_matches('"');
            assert!(
                !BANNED.contains(&name),
                "{}: banned dependency {name:?} reappeared",
                manifest.display()
            );
        }
    }
}
