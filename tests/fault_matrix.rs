//! Fault-injection matrix over executor paths × mirroring × fault kinds.
//!
//! The degraded executor (PR: "Deterministic fault injection") must keep
//! its promises on every combination of enumeration path ({generic scan,
//! FX fast inverse}), copy placement ({no-mirror, buddy-mirror}), and
//! fault kind ({transient read error, transient corruption, device
//! outage, at-rest corruption}):
//!
//! * served records are always a subset of the fault-free result, and
//!   `coverage` is exactly the served fraction of `|R(q)|`;
//! * transient faults are retried to full coverage;
//! * a dead device degrades without mirroring and fails over with it;
//! * at-rest corruption (bytes injected under a primary copy) is
//!   unrecoverable by retry but fully recoverable from the mirror.
//!
//! All fault decisions are pure functions of the pinned seed, so every
//! assertion here is deterministic.

use pmr_baselines::ModuloDistribution;
use pmr_core::method::DistributionMethod;
use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_rt::fault::{FaultPlan, RetryPolicy};
use pmr_rt::rt_proptest;
use pmr_storage::exec::{
    execute_parallel, execute_parallel_with, DeviceOutcome, ExecPolicy, Redundancy,
};
use pmr_storage::{CostModel, DeclusteredFile, ExecutionReport};
use std::sync::{Arc, OnceLock};

const SEED: u64 = 0xFA11;

/// Eight retries drain a 0.3-rate transient fault stream to full
/// coverage (per-bucket loss probability 0.3^8 ≈ 6.6e-5; deterministic
/// for the pinned seed either way).
fn patient_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_us: 10,
        cap_us: 1_000,
        budget_us: 1_000_000,
    }
}

fn build_file<D: DistributionMethod>(
    sys: &SystemConfig,
    method: D,
    records: i64,
    mirror: bool,
) -> DeclusteredFile<D> {
    let mut builder = Schema::builder();
    for (i, &size) in sys.field_sizes().iter().enumerate() {
        builder = builder.field(format!("f{i}"), FieldType::Int, size);
    }
    let schema = builder
        .devices(sys.devices())
        .build()
        .expect("system is valid");
    let mut file = DeclusteredFile::new(schema, method, SEED).expect("schema matches system");
    if mirror {
        assert!(file.enable_mirroring(), "M >= 2 systems mirror");
    }
    for i in 0..records {
        let values: Vec<Value> = (0..sys.num_fields())
            .map(|f| Value::Int(i * 131 + f as i64 * 7))
            .collect();
        file.insert(Record::new(values))
            .expect("records type-check");
    }
    file
}

fn sorted_records(report: &ExecutionReport) -> Vec<String> {
    let mut v: Vec<String> = report.records.iter().map(|r| format!("{r}")).collect();
    v.sort_unstable();
    v
}

/// The matrix body for one distribution method (one enumeration path).
fn run_matrix<D: DistributionMethod>(sys: &SystemConfig, make: impl Fn() -> D, label: &str) {
    let cost = CostModel::main_memory();
    let query =
        PartialMatchQuery::new(sys, &vec![None; sys.num_fields()]).expect("all-unspecified");
    let rq = query.qualified_count_in(sys);
    for mirror in [false, true] {
        let file = build_file(sys, make(), 400, mirror);
        let policy = ExecPolicy {
            retry: patient_retry(),
            failover: mirror,
            redundancy: Redundancy::Mirror,
            seed: SEED,
            cache: None,
        };
        let reference =
            execute_parallel_with(&file, &query, &cost, &policy).expect("fault-free run");
        assert_eq!(
            reference.coverage, 1.0,
            "{label} mirror={mirror} fault-free"
        );
        let reference_records = sorted_records(&reference);

        for (fault, spec) in [
            ("read", "read=0.3"),
            ("corrupt", "corrupt=0.3"),
            ("outage", "outage=2"),
        ] {
            let ctx = format!("{label} {fault} mirror={mirror}");
            let plan = FaultPlan::parse(spec, SEED).expect("spec parses");
            file.install_fault_plan(Some(Arc::new(plan)));
            let report =
                execute_parallel_with(&file, &query, &cost, &policy).expect("degrades, not errors");
            file.install_fault_plan(None);

            // Coverage is exactly the served fraction, and served records
            // are a subset of the fault-free result.
            let expect_cov = (rq - report.lost_buckets.len() as u64) as f64 / rq as f64;
            assert!(
                (report.coverage - expect_cov).abs() < 1e-12,
                "{ctx}: coverage accounting"
            );
            for r in sorted_records(&report) {
                assert!(
                    reference_records.binary_search(&r).is_ok(),
                    "{ctx}: phantom record {r}"
                );
            }

            match (fault, mirror) {
                ("outage", false) => {
                    assert!(
                        report.coverage < 1.0,
                        "{ctx}: device 2 owns qualified buckets"
                    );
                    assert_eq!(report.per_device[2].outcome, DeviceOutcome::Lost, "{ctx}");
                    assert!(!report.is_complete());
                    for &code in &report.lost_buckets {
                        assert_eq!(
                            file.method().device_of_packed(code),
                            2,
                            "{ctx}: lost bucket {code} not on the dead device"
                        );
                    }
                }
                ("outage", true) => {
                    assert_eq!(report.coverage, 1.0, "{ctx}: buddy serves the dead device");
                    assert_eq!(
                        report.per_device[2].outcome,
                        DeviceOutcome::FailedOver,
                        "{ctx}"
                    );
                    assert_eq!(sorted_records(&report), reference_records, "{ctx}");
                }
                _ => {
                    // Transient faults: retries drain the fault stream.
                    assert_eq!(report.coverage, 1.0, "{ctx}: retries recover transients");
                    assert_eq!(sorted_records(&report), reference_records, "{ctx}");
                }
            }
        }
    }
}

/// F = (4, 4, 4), M = 8: the FX fast-inverse enumeration path.
#[test]
fn fault_matrix_fx_path() {
    let sys = SystemConfig::new(&[4, 4, 4], 8).unwrap();
    run_matrix(&sys, || FxDistribution::auto(sys.clone()).unwrap(), "fx");
}

/// Same system through Modulo: the generic packed-scan path.
#[test]
fn fault_matrix_scan_path() {
    let sys = SystemConfig::new(&[4, 4, 4], 8).unwrap();
    run_matrix(&sys, || ModuloDistribution::new(sys.clone()), "scan");
}

/// At-rest corruption round trip: bytes injected under a primary copy
/// make the strict executor error and the policy executor lose exactly
/// that bucket — unless the buddy mirror still holds a clean copy.
#[test]
fn at_rest_corruption_round_trip() {
    let sys = SystemConfig::new(&[4, 4, 4], 8).unwrap();
    let cost = CostModel::main_memory();
    let query =
        PartialMatchQuery::new(&sys, &vec![None; sys.num_fields()]).expect("all-unspecified");

    for mirror in [false, true] {
        let file = build_file(
            &sys,
            FxDistribution::auto(sys.clone()).unwrap(),
            400,
            mirror,
        );
        let policy = ExecPolicy {
            retry: patient_retry(),
            failover: mirror,
            redundancy: Redundancy::Mirror,
            seed: SEED,
            cache: None,
        };
        let reference = execute_parallel_with(&file, &query, &cost, &policy).unwrap();
        let victim_device = 3u64;
        let victim_code = file.devices()[victim_device as usize]
            .resident_buckets()
            .first()
            .copied()
            .expect("400 records reach every device");
        file.devices()[victim_device as usize].inject_corruption(victim_code, b"\x00garbage");

        // Strict paths surface the decode failure as an error, never a
        // panic (satellite: decode failures are typed even with faults
        // off).
        assert!(execute_parallel(&file, &query, &cost).is_err());

        let report = execute_parallel_with(&file, &query, &cost, &policy).unwrap();
        if mirror {
            assert_eq!(
                report.coverage, 1.0,
                "mirror copy serves the corrupted bucket"
            );
            assert_eq!(sorted_records(&report), sorted_records(&reference));
            assert_eq!(
                report.per_device[victim_device as usize].outcome,
                DeviceOutcome::FailedOver
            );
        } else {
            assert_eq!(report.lost_buckets, vec![victim_code]);
            assert_eq!(
                report.per_device[victim_device as usize].outcome,
                DeviceOutcome::Lost
            );
            assert!(report.coverage < 1.0);
        }
    }
}

/// The mirrored Table 7 file (F = 8^6, M = 32), built once: property
/// cases only install fault plans (reads are unaffected by plan swaps
/// between runs).
fn table7_file() -> &'static DeclusteredFile<FxDistribution> {
    static FILE: OnceLock<DeclusteredFile<FxDistribution>> = OnceLock::new();
    FILE.get_or_init(|| {
        let sys = SystemConfig::new(&[8; 6], 32).unwrap();
        build_file(
            &sys,
            FxDistribution::auto(sys.clone()).unwrap(),
            4_000,
            true,
        )
    })
}

/// The parity-protected Table 7 file (F = 8^6, M = 32, RS(4+2) stripes),
/// built once like [`table7_file`] but with erasure coding instead of
/// buddy mirroring.
fn table7_parity_file() -> &'static DeclusteredFile<FxDistribution> {
    static FILE: OnceLock<DeclusteredFile<FxDistribution>> = OnceLock::new();
    FILE.get_or_init(|| {
        let sys = SystemConfig::new(&[8; 6], 32).unwrap();
        let mut file = build_file(
            &sys,
            FxDistribution::auto(sys.clone()).unwrap(),
            4_000,
            false,
        );
        assert!(file.enable_parity(4, 2), "k + r = 6 <= 32 devices");
        file
    })
}

/// A random Table 7 query; 1–3 unspecified fields keeps |R(q)| <= 512
/// per case.
fn random_table7_query(src: &mut pmr_rt::check::Source, sys: &SystemConfig) -> PartialMatchQuery {
    let unspecified = src.int_in(1, 3) as usize;
    let values: Vec<Option<u64>> = (0..sys.num_fields())
        .map(|i| {
            if i < sys.num_fields() - unspecified {
                Some(src.int_in(0, sys.field_size(i) - 1))
            } else {
                None
            }
        })
        .collect();
    PartialMatchQuery::new(sys, &values).expect("values in range")
}

/// The qualified codes of `query` homed on any of `dead` — exactly the
/// buckets an outage of those devices puts at risk.
fn qualified_codes_on<D: DistributionMethod>(
    file: &DeclusteredFile<D>,
    query: &PartialMatchQuery,
    dead: &[u64],
) -> Vec<u64> {
    let sys = file.system().clone();
    let mut at_risk = Vec::new();
    let mut it = query.qualified_buckets(&sys);
    while let Some(code) = it.next_code() {
        if dead.contains(&file.method().device_of_packed(code)) {
            at_risk.push(code);
        }
    }
    at_risk.sort_unstable();
    at_risk
}

rt_proptest! {
    /// Mirroring turns ANY single-device outage into a non-event: every
    /// random Table 7 query completes with full coverage and exactly the
    /// fault-free record set (ISSUE acceptance property).
    fn single_outage_with_mirroring_is_invisible(src) {
        let file = table7_file();
        let sys = file.system().clone();
        let dead = src.int_in(0, sys.devices() - 1);
        let query = random_table7_query(src, &sys);
        let cost = CostModel::main_memory();
        let policy = ExecPolicy {
            retry: RetryPolicy::none(),
            failover: true,
            redundancy: Redundancy::Mirror,
            seed: SEED,
            cache: None,
        };

        file.install_fault_plan(None);
        let clean = execute_parallel_with(file, &query, &cost, &policy).expect("fault-free");

        file.install_fault_plan(Some(Arc::new(FaultPlan::new(SEED).with_dead_device(dead))));
        let degraded = execute_parallel_with(file, &query, &cost, &policy).expect("degrades");
        file.install_fault_plan(None);

        assert_eq!(degraded.coverage, 1.0, "device {dead} outage, query {query}");
        assert!(degraded.is_complete());
        assert_eq!(
            sorted_records(&degraded),
            sorted_records(&clean),
            "device {dead} outage, query {query}"
        );
    }

    /// Two simultaneous outages under buddy mirroring lose coverage
    /// exactly when the dead pair are buddies (`a ^ M/2 == b`): then both
    /// copies of a stripe are gone and the lost set is precisely the
    /// qualified buckets homed on the pair; any non-buddy pair still has
    /// a living copy of everything (satellite property).
    fn double_outage_with_mirroring_loses_coverage_iff_buddies(src) {
        let file = table7_file();
        let sys = file.system().clone();
        let m = sys.devices();
        let a = src.int_in(0, m - 1);
        let b = {
            let pick = src.int_in(0, m - 2);
            if pick >= a { pick + 1 } else { pick }
        };
        let query = random_table7_query(src, &sys);
        let cost = CostModel::main_memory();
        let policy = ExecPolicy {
            retry: RetryPolicy::none(),
            failover: true,
            redundancy: Redundancy::Mirror,
            seed: SEED,
            cache: None,
        };

        file.install_fault_plan(None);
        let clean = execute_parallel_with(file, &query, &cost, &policy).expect("fault-free");

        let plan = FaultPlan::new(SEED).with_dead_device(a).with_dead_device(b);
        file.install_fault_plan(Some(Arc::new(plan)));
        let degraded = execute_parallel_with(file, &query, &cost, &policy).expect("degrades");
        file.install_fault_plan(None);

        let buddies = file.mirroring().expect("table7_file mirrors").buddy_of(a) == b;
        if buddies {
            let at_risk = qualified_codes_on(file, &query, &[a, b]);
            let mut lost = degraded.lost_buckets.clone();
            lost.sort_unstable();
            assert_eq!(lost, at_risk, "buddy pair ({a}, {b}), query {query}");
            assert_eq!(degraded.coverage == 1.0, at_risk.is_empty());
        } else {
            assert_eq!(degraded.coverage, 1.0, "non-buddy pair ({a}, {b}), query {query}");
            assert_eq!(
                sorted_records(&degraded),
                sorted_records(&clean),
                "non-buddy pair ({a}, {b}), query {query}"
            );
        }
    }

    /// ISSUE acceptance pin: under `Parity{k=4, r=2}` on the Table 7
    /// system, ANY two simultaneous device outages are invisible —
    /// coverage stays 1.0 and the record set is bit-equal to the
    /// fault-free run, at ~r/k storage overhead instead of mirroring's 2x.
    fn double_outage_with_parity_is_invisible(src) {
        let file = table7_parity_file();
        let sys = file.system().clone();
        let m = sys.devices();
        let a = src.int_in(0, m - 1);
        let b = {
            let pick = src.int_in(0, m - 2);
            if pick >= a { pick + 1 } else { pick }
        };
        let query = random_table7_query(src, &sys);
        let cost = CostModel::main_memory();
        let policy = ExecPolicy {
            retry: RetryPolicy::none(),
            failover: true,
            redundancy: Redundancy::Parity { k: 4, r: 2 },
            seed: SEED,
            cache: None,
        };

        file.install_fault_plan(None);
        let clean = execute_parallel_with(file, &query, &cost, &policy).expect("fault-free");
        assert_eq!(clean.reconstructions(), 0);

        let plan = FaultPlan::new(SEED).with_dead_device(a).with_dead_device(b);
        file.install_fault_plan(Some(Arc::new(plan)));
        let degraded = execute_parallel_with(file, &query, &cost, &policy).expect("degrades");
        file.install_fault_plan(None);

        assert_eq!(degraded.coverage, 1.0, "dead pair ({a}, {b}), query {query}");
        assert!(degraded.is_complete());
        assert_eq!(
            sorted_records(&degraded),
            sorted_records(&clean),
            "dead pair ({a}, {b}), query {query}"
        );
        // Every at-risk bucket was actually served via parity decode, not
        // by luck of placement.
        let at_risk = qualified_codes_on(file, &query, &[a, b]);
        assert!(
            degraded.reconstructions() >= at_risk.len() as u64,
            "dead pair ({a}, {b}): {} at-risk buckets, {} reconstructions",
            at_risk.len(),
            degraded.reconstructions()
        );
    }
}
