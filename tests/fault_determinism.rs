//! Seed-reproducibility of fault injection (ISSUE acceptance check):
//! every fault decision is a pure function of `(seed, device, bucket,
//! attempt)`, so two runs under the same seed must inject *identical*
//! fault streams — observed here through the `fault.injected` counter.
//!
//! Lives in its own integration-test binary: it installs the in-memory
//! trace sink and resets the global counter registry, which would race
//! with any concurrently running traced test in the same process.

use pmr_core::{FxDistribution, PartialMatchQuery, SystemConfig};
use pmr_mkh::{FieldType, Record, Schema, Value};
use pmr_rt::fault::{FaultPlan, RetryPolicy};
use pmr_rt::obs::{self, TraceConfig};
use pmr_storage::exec::{execute_parallel_with, ExecPolicy, Redundancy};
use pmr_storage::{CostModel, DeclusteredFile};
use std::sync::Arc;

/// One full faulted run; returns the `fault.injected` total it produced.
fn faulted_run(seed: u64) -> u64 {
    obs::reset();
    let sys = SystemConfig::new(&[4, 4, 4], 8).unwrap();
    let mut builder = Schema::builder();
    for (i, &size) in sys.field_sizes().iter().enumerate() {
        builder = builder.field(format!("f{i}"), FieldType::Int, size);
    }
    let schema = builder.devices(sys.devices()).build().unwrap();
    let mut file =
        DeclusteredFile::new(schema, FxDistribution::auto(sys.clone()).unwrap(), seed).unwrap();
    file.enable_mirroring();
    for i in 0..500i64 {
        let values: Vec<Value> = (0..sys.num_fields())
            .map(|f| Value::Int(i * 17 + f as i64))
            .collect();
        file.insert(Record::new(values)).unwrap();
    }
    let plan = FaultPlan::parse("read=0.2,corrupt=0.05,latency=0.1:50..500", seed).unwrap();
    file.install_fault_plan(Some(Arc::new(plan)));
    let policy = ExecPolicy {
        retry: RetryPolicy::default(),
        failover: true,
        redundancy: Redundancy::Mirror,
        seed,
        cache: None,
    };
    let cost = CostModel::main_memory();
    // A spread of query shapes so the counter aggregates many
    // (device, bucket, attempt) decisions.
    for unspecified in 1..sys.num_fields() {
        let values: Vec<Option<u64>> = (0..sys.num_fields())
            .map(|i| {
                (i < sys.num_fields() - unspecified).then(|| (i as u64 * 3) % sys.field_size(i))
            })
            .collect();
        let query = PartialMatchQuery::new(&sys, &values).unwrap();
        execute_parallel_with(&file, &query, &cost, &policy).expect("degrades, not errors");
    }
    obs::counter_total("fault.injected")
}

#[test]
fn same_seed_reproduces_the_fault_stream() {
    obs::install(TraceConfig::Memory).expect("in-memory sink");
    let first = faulted_run(0xDECADE);
    let second = faulted_run(0xDECADE);
    assert!(first > 0, "a 20% read-error rate injects something");
    assert_eq!(first, second, "same seed, same fault.injected total");
    // A different seed draws a different stream. (Equality of totals is
    // possible in principle; these two seeds are pinned as differing.)
    let other = faulted_run(0xC0FFEE);
    assert_ne!(first, other, "distinct pinned seeds diverge");
    obs::drain_events();
}
