//! Full-lifecycle integration: build → query → snapshot → reload →
//! grow → redistribute → query again, across crate boundaries.

use pmr::core::FxDistribution;
use pmr::mkh::directory::DynamicDirectory;
use pmr::mkh::{FieldType, Record, Schema, Value};
use pmr::storage::exec::{execute_parallel, execute_parallel_fx};
use pmr::storage::persist;
use pmr::storage::{CostModel, DeclusteredFile};

fn schema() -> Schema {
    Schema::builder()
        .field("sensor", FieldType::Int, 16)
        .field("hour", FieldType::Int, 8)
        .field("status", FieldType::Str, 4)
        .devices(8)
        .build()
        .unwrap()
}

fn readings(n: i64) -> Vec<Record> {
    let statuses = ["ok", "warn", "err"];
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::Int(i % 200),
                Value::Int(i % 24),
                statuses[(i % 3) as usize].into(),
            ])
        })
        .collect()
}

#[test]
fn full_lifecycle() {
    let dir = std::env::temp_dir().join(format!("pmr-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Build and fill.
    let schema0 = schema();
    let fx0 = FxDistribution::auto(schema0.system().clone()).unwrap();
    let mut file = DeclusteredFile::new(schema0.clone(), fx0, 77).unwrap();
    file.insert_all_parallel(readings(3_000)).unwrap();
    assert_eq!(file.record_count(), 3_000);

    // 2. Query (both executors agree).
    let q = file.query(&[("status", "err".into())]).unwrap();
    let generic = execute_parallel(&file, &q, &CostModel::main_memory()).unwrap();
    let fast = execute_parallel_fx(&file, &q, &CostModel::main_memory()).unwrap();
    assert_eq!(generic.histogram(), fast.histogram());
    let err_count = file
        .retrieve_exact(&[("status", "err".into())])
        .unwrap()
        .len();
    assert_eq!(err_count, 1_000);

    // 3. Snapshot and reload.
    persist::save(&file, &dir).unwrap();
    let fx1 = FxDistribution::auto(schema0.system().clone()).unwrap();
    let reloaded = persist::load(&dir, schema0, fx1, 77).unwrap();
    assert_eq!(reloaded.record_count(), 3_000);
    assert_eq!(reloaded.record_occupancy(), file.record_occupancy());

    // 4. Grow the directory (double the sensor field) and redistribute.
    let mut directory = DynamicDirectory::new(schema(), 77);
    let grown_field = directory.expand().unwrap();
    let grown_schema = directory.schema().clone();
    assert_eq!(grown_field, 0);
    assert_eq!(grown_schema.system().field_size(0), 32);
    let fx2 = FxDistribution::auto(grown_schema.system().clone()).unwrap();
    let grown = reloaded.redistribute(grown_schema, fx2).unwrap();
    assert_eq!(grown.record_count(), 3_000);

    // 5. Same logical answers after growth.
    assert_eq!(
        grown
            .retrieve_exact(&[("status", "err".into())])
            .unwrap()
            .len(),
        err_count
    );
    let q2 = grown.query(&[("sensor", Value::Int(42))]).unwrap();
    let report = execute_parallel(&grown, &q2, &CostModel::disk_1988()).unwrap();
    assert_eq!(
        report.histogram().iter().sum::<u64>(),
        q2.qualified_count_in(grown.system())
    );
    // FX auto on the grown system is still balance-guaranteed for this
    // single-specified-field query.
    let m = pmr::storage::metrics::BalanceMetrics::of(&report.histogram());
    assert!(m.is_strict_optimal());

    std::fs::remove_dir_all(&dir).unwrap();
}
