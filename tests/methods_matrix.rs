//! Matrix test: every distribution method in the workspace, through the
//! same invariants on the same systems.

use pmr::baselines::{
    BinaryWeightedDistribution, GdmDistribution, GrayCodeDistribution, ModuloDistribution,
    RandomDistribution, SpanningPathDistribution,
};
use pmr::core::method::DistributionMethod;
use pmr::core::optimality::{is_k_optimal, response_histogram};
use pmr::core::query::{PartialMatchQuery, Pattern};
use pmr::core::{
    Assignment, AssignmentStrategy, FxDistribution, GeneralFxDistribution, SystemConfig,
};

/// Builds every method applicable to a system.
fn all_methods(sys: &SystemConfig) -> Vec<(String, Box<dyn DistributionMethod>)> {
    let mut out: Vec<(String, Box<dyn DistributionMethod>)> = Vec::new();
    for strategy in [
        AssignmentStrategy::Basic,
        AssignmentStrategy::CycleIu1,
        AssignmentStrategy::CycleIu2,
        AssignmentStrategy::TheoremNine,
    ] {
        let fx = FxDistribution::with_strategy(sys.clone(), strategy).unwrap();
        out.push((format!("fx/{strategy}"), Box::new(fx)));
    }
    let a = Assignment::from_strategy(sys, AssignmentStrategy::TheoremNine).unwrap();
    out.push((
        "general-fx".into(),
        Box::new(GeneralFxDistribution::from_assignment(&a)),
    ));
    out.push((
        "modulo".into(),
        Box::new(ModuloDistribution::new(sys.clone())),
    ));
    out.push((
        "gdm(3,5,7,...)".into(),
        Box::new(
            GdmDistribution::new(
                sys.clone(),
                (0..sys.num_fields() as u64).map(|i| 2 * i + 3).collect(),
            )
            .unwrap(),
        ),
    ));
    out.push((
        "random".into(),
        Box::new(RandomDistribution::new(sys.clone(), 5)),
    ));
    if let Ok(sp) = SpanningPathDistribution::build(sys.clone()) {
        out.push(("spanning-path".into(), Box::new(sp)));
    }
    if let Ok(bw) = BinaryWeightedDistribution::new(sys.clone()) {
        out.push(("binary-weighted".into(), Box::new(bw)));
    }
    if let Ok(gc) = GrayCodeDistribution::new(sys.clone()) {
        out.push(("gray-code".into(), Box::new(gc)));
    }
    out
}

fn systems() -> Vec<SystemConfig> {
    vec![
        SystemConfig::new(&[2, 8], 4).unwrap(),
        SystemConfig::new(&[4, 4, 4], 8).unwrap(),
        SystemConfig::new(&[2, 2, 2, 2], 4).unwrap(),
        SystemConfig::new(&[8, 2, 4], 16).unwrap(),
    ]
}

/// Every method maps every bucket to a device in range, and every query's
/// histogram sums to |R(q)|.
#[test]
fn conservation_holds_for_every_method() {
    for sys in systems() {
        for (name, method) in all_methods(&sys) {
            let mut buf = Vec::new();
            for idx in sys.all_indices() {
                sys.decode_index(idx, &mut buf);
                assert!(
                    method.device_of(&buf) < sys.devices(),
                    "{name} on {sys}: device out of range for {buf:?}"
                );
            }
            for pattern in Pattern::all(sys.num_fields()) {
                let q = PartialMatchQuery::zero_representative(&sys, pattern);
                let hist = response_histogram(method.as_ref(), &sys, &q);
                assert_eq!(
                    hist.iter().sum::<u64>(),
                    q.qualified_count_in(&sys),
                    "{name} on {sys}: histogram leak for {pattern:?}"
                );
            }
        }
    }
}

/// The deterministic algebraic methods are 0-optimal everywhere, and the
/// XOR/modulo families are also 1-optimal; the heuristics may not be.
#[test]
fn zero_and_one_optimality_matrix() {
    for sys in systems() {
        for (name, method) in all_methods(&sys) {
            assert!(
                is_k_optimal(method.as_ref(), &sys, 0),
                "{name} on {sys} not 0-optimal"
            );
            let one_optimal_guaranteed = name.starts_with("fx/")
                || name == "general-fx"
                || name == "modulo"
                || name == "gdm(3,5,7,...)"
                || name == "binary-weighted";
            if one_optimal_guaranteed {
                assert!(
                    is_k_optimal(method.as_ref(), &sys, 1),
                    "{name} on {sys} not 1-optimal"
                );
            }
        }
    }
}

/// Shift-invariance declarations are honest: methods claiming it have
/// identical sorted histograms across every query of each pattern.
#[test]
fn shift_invariance_declarations_are_honest() {
    for sys in systems() {
        for (name, method) in all_methods(&sys) {
            if !method.histogram_shift_invariant() {
                continue;
            }
            for pattern in Pattern::all(sys.num_fields()) {
                let mut reference = response_histogram(
                    method.as_ref(),
                    &sys,
                    &PartialMatchQuery::zero_representative(&sys, pattern),
                );
                reference.sort_unstable();
                let ok = pmr::core::optimality::for_each_query(&sys, pattern, |q| {
                    let mut h = response_histogram(method.as_ref(), &sys, q);
                    h.sort_unstable();
                    h == reference
                });
                assert!(ok, "{name} on {sys}: dishonest invariance for {pattern:?}");
            }
        }
    }
}
