//! # pmr — FX declustering for partial match retrieval
//!
//! Umbrella crate re-exporting the whole workspace, which implements
//! **Kim & Pramanik, "Optimal File Distribution For Partial Match
//! Retrieval" (SIGMOD 1988)** end to end:
//!
//! * [`core`] — the paper's contribution: the FX (fieldwise XOR)
//!   distribution method, its `I`/`U`/`IU1`/`IU2` field transformations,
//!   the optimality theory (ground-truth checkers, sufficient
//!   conditions, machine-checked theorems), fast inverse mapping, and
//!   the generalized-table extension.
//! * [`baselines`] — Disk Modulo, GDM (with automated parameter search),
//!   random allocation, spanning-path and binary-CPF heuristics.
//! * [`mkh`] — the multi-key hashing substrate: schemas, records,
//!   per-field hashers, dynamic directories, field-size design.
//! * [`storage`] — the simulated parallel testbed: devices with a cost
//!   model, declustered files, parallel executors, persistence.
//! * [`analysis`] — the experiment engine regenerating every table and
//!   figure of the paper's evaluation, plus the annealing optimizer.
//! * [`rt`] — the hermetic runtime: seedable PRNG, scoped worker pool,
//!   zero-copy buffers, property-test and micro-benchmark harnesses. The
//!   workspace has **zero external dependencies**; everything that would
//!   otherwise come from a registry crate lives here.
//!
//! ## End-to-end example
//!
//! ```
//! use pmr::core::{FxDistribution, method::DistributionMethod, optimality};
//! use pmr::mkh::{FieldType, Record, Schema, Value};
//! use pmr::storage::{exec::execute_parallel_fx, CostModel, DeclusteredFile};
//!
//! // Schema with power-of-two hash-class counts, over 8 devices.
//! let schema = Schema::builder()
//!     .field("author", FieldType::Str, 8)
//!     .field("year", FieldType::Int, 8)
//!     .field("subject", FieldType::Str, 4)
//!     .devices(8)
//!     .build()
//!     .unwrap();
//!
//! // FX with Theorem-9 transforms: perfect optimal here (≤ 3 small fields).
//! let fx = FxDistribution::auto(schema.system().clone()).unwrap();
//! assert!(optimality::is_perfect_optimal(&fx, schema.system()));
//!
//! // Fill, query, and retrieve in parallel.
//! let mut file = DeclusteredFile::new(schema, fx, 42).unwrap();
//! for i in 0..100 {
//!     file.insert(Record::new(vec![
//!         format!("author{}", i % 5).into(),
//!         Value::Int(1970 + i % 30),
//!         "databases".into(),
//!     ]))
//!     .unwrap();
//! }
//! let q = file.query(&[("author", "author3".into())]).unwrap();
//! let report = execute_parallel_fx(&file, &q, &CostModel::main_memory()).unwrap();
//! assert_eq!(
//!     report.histogram().iter().sum::<u64>(),
//!     q.qualified_count_in(file.system())
//! );
//! ```
//!
//! See `README.md` for the architecture map, `docs/TUTORIAL.md` for a
//! guided walkthrough, `DESIGN.md` for the paper-to-module index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pmr_analysis as analysis;
pub use pmr_baselines as baselines;
pub use pmr_core as core;
pub use pmr_mkh as mkh;
pub use pmr_rt as rt;
pub use pmr_storage as storage;
